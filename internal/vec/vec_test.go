package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float32
	}{
		{[]float32{}, []float32{}, 0},
		{[]float32{1}, []float32{2}, 2},
		{[]float32{1, 2, 3}, []float32{4, 5, 6}, 32},
		{[]float32{1, 2, 3, 4, 5}, []float32{1, 1, 1, 1, 1}, 15},
		{[]float32{-1, 2, -3, 4}, []float32{5, -6, 7, -8}, -5 - 12 - 21 - 32},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-6) {
			t.Errorf("Dot(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float32{1, 2}, []float32{1})
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		a := make([]float32, n)
		b := make([]float32, n)
		var want float32
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEq(got, want, 1e-4) {
			t.Fatalf("n=%d Dot=%v naive=%v", n, got, want)
		}
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); !almostEq(got, 5, 1e-6) {
		t.Fatalf("Norm=%v want 5", got)
	}
	Normalize(v)
	if got := Norm(v); !almostEq(got, 1, 1e-6) {
		t.Fatalf("after Normalize, Norm=%v want 1", got)
	}
	zero := []float32{0, 0, 0}
	Normalize(zero) // must not panic or produce NaN
	for _, x := range zero {
		if x != 0 {
			t.Fatalf("Normalize(zero) changed the vector: %v", zero)
		}
	}
}

func TestNormalizedDoesNotMutate(t *testing.T) {
	v := []float32{2, 0}
	u := Normalized(v)
	if v[0] != 2 {
		t.Fatal("Normalized mutated its input")
	}
	if !almostEq(u[0], 1, 1e-6) {
		t.Fatalf("Normalized = %v", u)
	}
}

func TestL2(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{1, 2, 3, 4, 5}
	if got := L2(a, b); got != 0 {
		t.Fatalf("L2(a,a)=%v want 0", got)
	}
	c := []float32{0, 0}
	d := []float32{3, 4}
	if got := L2(c, d); !almostEq(got, 5, 1e-6) {
		t.Fatalf("L2=%v want 5", got)
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, b); !almostEq(got, 0, 1e-6) {
		t.Fatalf("orthogonal cosine=%v", got)
	}
	if got := Cosine(a, a); !almostEq(got, 1, 1e-6) {
		t.Fatalf("self cosine=%v", got)
	}
	neg := []float32{-1, 0}
	if got := Cosine(a, neg); !almostEq(got, -1, 1e-6) {
		t.Fatalf("opposite cosine=%v", got)
	}
	zero := []float32{0, 0}
	if got := Cosine(a, zero); got != 0 {
		t.Fatalf("zero-vector cosine=%v want 0", got)
	}
}

func TestCosineScaleInvariance(t *testing.T) {
	f := func(raw []float32, scale float32) bool {
		if len(raw) < 2 {
			return true
		}
		// Keep values bounded to avoid float32 overflow artifacts.
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		for i, x := range raw {
			a[i] = float32(math.Mod(float64(x), 100))
			b[i] = a[i] + 1
		}
		s := float32(math.Abs(math.Mod(float64(scale), 9))) + 1.5 // in [1.5, 10.5)
		scaled := make([]float32, len(a))
		for i := range a {
			scaled[i] = a[i] * s
		}
		return almostEq(Cosine(a, b), Cosine(scaled, b), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if !almostEq(m[0], 3, 1e-6) || !almostEq(m[1], 4, 1e-6) {
		t.Fatalf("Mean=%v", m)
	}
}

func TestAddScaledSub(t *testing.T) {
	a := []float32{1, 1}
	AddScaled(a, 2, []float32{3, 4})
	if a[0] != 7 || a[1] != 9 {
		t.Fatalf("AddScaled=%v", a)
	}
	dst := make([]float32, 2)
	Sub(dst, []float32{5, 5}, []float32{2, 3})
	if dst[0] != 3 || dst[1] != 2 {
		t.Fatalf("Sub=%v", dst)
	}
}

func TestTopKKeepsBest(t *testing.T) {
	tk := NewTopK(3)
	scores := []float32{0.1, 0.9, 0.5, 0.7, 0.3, 0.95}
	for id, s := range scores {
		tk.Push(id, s)
	}
	got := tk.Sorted()
	if len(got) != 3 {
		t.Fatalf("len=%d want 3", len(got))
	}
	if got[0].ID != 5 || got[1].ID != 1 || got[2].ID != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Push(1, 0.5)
	tk.Push(2, 0.9)
	got := tk.Sorted()
	if len(got) != 2 || got[0].ID != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(7, 0.5)
	tk.Push(3, 0.5)
	tk.Push(5, 0.5)
	got := tk.Sorted()
	if got[0].ID != 3 && got[0].ID != 5 && got[0].ID != 7 {
		t.Fatalf("unexpected ids %v", got)
	}
	if !(got[0].ID < got[1].ID) {
		t.Fatalf("ties must sort by ascending ID: %v", got)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		all := make([]Scored, n)
		tk := NewTopK(k)
		for i := 0; i < n; i++ {
			s := rng.Float32()
			all[i] = Scored{ID: i, Score: s}
			tk.Push(i, s)
		}
		SortScoredDesc(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstScore(t *testing.T) {
	tk := NewTopK(2)
	if _, full := tk.WorstScore(); full {
		t.Fatal("empty collector reported full")
	}
	tk.Push(0, 0.8)
	tk.Push(1, 0.6)
	w, full := tk.WorstScore()
	if !full || !almostEq(w, 0.6, 1e-6) {
		t.Fatalf("WorstScore=%v full=%v", w, full)
	}
	tk.Push(2, 0.7)
	w, _ = tk.WorstScore()
	if !almostEq(w, 0.7, 1e-6) {
		t.Fatalf("WorstScore after push=%v", w)
	}
}

// TestDotMatchesFloat64Reference checks the unrolled kernel against a plain
// float64 accumulation across lengths that exercise every tail case of the
// 8-wide loop (0..9 plus larger odd sizes).
func TestDotMatchesFloat64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65, 192, 768, 1001}
	for _, n := range lengths {
		a := make([]float32, n)
		b := make([]float32, n)
		var ref float64
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
			ref += float64(a[i]) * float64(b[i])
		}
		got := Dot(a, b)
		// float32 accumulation error grows with n; 1e-4 relative slack on
		// unit-scale inputs is far above what reordering can introduce.
		tol := 1e-4 * (1 + math.Abs(ref))
		if math.Abs(float64(got)-ref) > tol {
			t.Fatalf("n=%d Dot=%v float64 ref=%v", n, got, ref)
		}
	}
}

// TestL2SqMatchesFloat64Reference is the same reference check for L2Sq.
func TestL2SqMatchesFloat64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65, 192, 768, 1001}
	for _, n := range lengths {
		a := make([]float32, n)
		b := make([]float32, n)
		var ref float64
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
			d := float64(a[i]) - float64(b[i])
			ref += d * d
		}
		got := L2Sq(a, b)
		tol := 1e-4 * (1 + math.Abs(ref))
		if math.Abs(float64(got)-ref) > tol {
			t.Fatalf("n=%d L2Sq=%v float64 ref=%v", n, got, ref)
		}
	}
}

func BenchmarkDot768(b *testing.B) {
	x := make([]float32, 768)
	y := make([]float32, 768)
	for i := range x {
		x[i] = float32(i) * 0.001
		y[i] = float32(768-i) * 0.001
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkDot192(b *testing.B) {
	x := make([]float32, 192)
	y := make([]float32, 192)
	for i := range x {
		x[i] = float32(i) * 0.001
		y[i] = float32(192-i) * 0.001
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkL2Sq768(b *testing.B) {
	x := make([]float32, 768)
	y := make([]float32, 768)
	for i := range x {
		x[i] = float32(i) * 0.001
		y[i] = float32(768-i) * 0.001
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = L2Sq(x, y)
	}
}

func BenchmarkL2Sq192(b *testing.B) {
	x := make([]float32, 192)
	y := make([]float32, 192)
	for i := range x {
		x[i] = float32(i) * 0.001
		y[i] = float32(192-i) * 0.001
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = L2Sq(x, y)
	}
}
