package vec

import (
	"container/heap"
	"sort"
)

// Scored pairs an item identifier with a score. It is the currency of every
// ranked list in the system: similarity search results, cluster rankings and
// final relation rankings all flow through []Scored.
type Scored struct {
	ID    int
	Score float32
}

// TopK maintains the k highest-scoring items seen so far using a min-heap,
// so inserting n items costs O(n log k). The zero value is not usable; call
// NewTopK.
type TopK struct {
	k int
	h scoredMinHeap
}

// NewTopK returns a collector that keeps the k best (highest score) items.
// k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vec: TopK requires k > 0")
	}
	return &TopK{k: k, h: make(scoredMinHeap, 0, k)}
}

// Push offers an item to the collector.
func (t *TopK) Push(id int, score float32) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Scored{ID: id, Score: score})
		return
	}
	if score > t.h[0].Score {
		t.h[0] = Scored{ID: id, Score: score}
		heap.Fix(&t.h, 0)
	}
}

// Len reports how many items are currently held (≤ k).
func (t *TopK) Len() int { return len(t.h) }

// WorstScore returns the lowest score currently retained, or -Inf semantics
// via ok=false when the collector is not yet full.
func (t *TopK) WorstScore() (score float32, full bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// Sorted drains the collector and returns the items ordered best-first.
// Ties are broken by ascending ID so results are deterministic.
func (t *TopK) Sorted() []Scored {
	out := make([]Scored, len(t.h))
	copy(out, t.h)
	SortScoredDesc(out)
	t.h = t.h[:0]
	return out
}

// SortScoredDesc orders s by descending score, breaking ties by ascending ID.
func SortScoredDesc(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
}

type scoredMinHeap []Scored

func (h scoredMinHeap) Len() int            { return len(h) }
func (h scoredMinHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h scoredMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredMinHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *scoredMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
