package vec

import (
	"container/heap"
	"sort"
)

// Scored pairs an item identifier with a score. It is the currency of every
// ranked list in the system: similarity search results, cluster rankings and
// final relation rankings all flow through []Scored.
type Scored struct {
	ID    int
	Score float32
}

// TopK maintains the k highest-scoring items seen so far using a min-heap,
// so inserting n items costs O(n log k). The zero value is not usable; call
// NewTopK.
type TopK struct {
	k int
	h scoredMinHeap
}

// NewTopK returns a collector that keeps the k best (highest score) items.
// k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vec: TopK requires k > 0")
	}
	return &TopK{k: k, h: make(scoredMinHeap, 0, k)}
}

// Push offers an item to the collector.
func (t *TopK) Push(id int, score float32) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Scored{ID: id, Score: score})
		return
	}
	if score > t.h[0].Score {
		t.h[0] = Scored{ID: id, Score: score}
		heap.Fix(&t.h, 0)
	}
}

// Len reports how many items are currently held (≤ k).
func (t *TopK) Len() int { return len(t.h) }

// WorstScore returns the lowest score currently retained, or -Inf semantics
// via ok=false when the collector is not yet full.
func (t *TopK) WorstScore() (score float32, full bool) {
	if len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// Sorted drains the collector and returns the items ordered best-first.
// Ties are broken by ascending ID so results are deterministic.
func (t *TopK) Sorted() []Scored {
	out := make([]Scored, len(t.h))
	copy(out, t.h)
	SortScoredDesc(out)
	t.h = t.h[:0]
	return out
}

// SortScoredDesc orders s by descending score, breaking ties by ascending ID.
func SortScoredDesc(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
}

// TopKDesc returns the k best entries of scores — descending score, ties
// broken by ascending index — without sorting the whole slice. The returned
// prefix is bit-identical to building one Scored per index, running
// SortScoredDesc over all of them, and truncating to k: the selection heap
// orders on the full (score, ID) comparator, so tie handling matches the
// full sort exactly. TopK is NOT a substitute here: its heap compares scores
// only and never replaces on equality, so under ties it can retain a
// different (higher-ID) element than the sort would.
//
// Cost is O(n log k) against the full sort's O(n log n); for the rank stage
// of an exhaustive scan with small k this removes the dominant superlinear
// term.
func TopKDesc(scores []float32, k int) []Scored {
	n := len(scores)
	if k <= 0 || n == 0 {
		return nil
	}
	if k >= n {
		out := make([]Scored, n)
		for i, s := range scores {
			out[i] = Scored{ID: i, Score: s}
		}
		SortScoredDesc(out)
		return out
	}
	// sortsAfter(a, b): a would appear after b in SortScoredDesc order. The
	// heap keeps its "last-sorting" element at the root, so the retained set
	// is exactly the k first elements of the full sort. The order is total
	// (IDs are distinct), which is what makes the selected set unique.
	sortsAfter := func(a, b Scored) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.ID > b.ID
	}
	h := make([]Scored, 0, k)
	for i, s := range scores {
		e := Scored{ID: i, Score: s}
		if len(h) < k {
			h = append(h, e)
			for j := len(h) - 1; j > 0; {
				p := (j - 1) / 2
				if !sortsAfter(h[j], h[p]) {
					break
				}
				h[j], h[p] = h[p], h[j]
				j = p
			}
			continue
		}
		if sortsAfter(e, h[0]) {
			continue
		}
		h[0] = e
		for j := 0; ; {
			l, r := 2*j+1, 2*j+2
			m := j
			if l < k && sortsAfter(h[l], h[m]) {
				m = l
			}
			if r < k && sortsAfter(h[r], h[m]) {
				m = r
			}
			if m == j {
				break
			}
			h[j], h[m] = h[m], h[j]
			j = m
		}
	}
	SortScoredDesc(h)
	return h
}

type scoredMinHeap []Scored

func (h scoredMinHeap) Len() int            { return len(h) }
func (h scoredMinHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h scoredMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredMinHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *scoredMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
