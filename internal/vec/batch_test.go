package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, dim int) [][]float32 {
	out := make([][]float32, rows)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		out[i] = v
	}
	return out
}

// The batched kernels must agree with a float64 reference within the same
// tolerance the scalar kernels are held to, across remainder-exercising
// lengths and query counts that leave a non-multiple-of-4 tail.
func TestDotBatchFloat64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 192, 768, 1001} {
		for _, nq := range []int{1, 2, 3, 4, 5, 7, 8} {
			qs := randMat(rng, nq, dim)
			vs := randMat(rng, 6, dim)
			out := make([]float32, nq*len(vs))
			DotBatch(qs, vs, out)
			for i := range qs {
				for j := range vs {
					var ref float64
					for d := 0; d < dim; d++ {
						ref += float64(qs[i][d]) * float64(vs[j][d])
					}
					got := out[i*len(vs)+j]
					eps := 1e-4 * (1 + math.Abs(ref))
					if math.Abs(float64(got)-ref) > eps {
						t.Fatalf("dim=%d DotBatch[%d][%d]=%v float64 ref=%v", dim, i, j, got, ref)
					}
				}
			}
		}
	}
}

func TestL2SqBatchFloat64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dim := range []int{0, 1, 7, 8, 9, 16, 63, 192, 768, 1001} {
		for _, nq := range []int{1, 3, 4, 5, 8} {
			qs := randMat(rng, nq, dim)
			vs := randMat(rng, 5, dim)
			out := make([]float32, nq*len(vs))
			L2SqBatch(qs, vs, out)
			for i := range qs {
				for j := range vs {
					var ref float64
					for d := 0; d < dim; d++ {
						e := float64(qs[i][d]) - float64(vs[j][d])
						ref += e * e
					}
					got := out[i*len(vs)+j]
					eps := 1e-4 * (1 + math.Abs(ref))
					if math.Abs(float64(got)-ref) > eps {
						t.Fatalf("dim=%d L2SqBatch[%d][%d]=%v float64 ref=%v", dim, i, j, got, ref)
					}
				}
			}
		}
	}
}

// The ExS batch path promises results bit-identical to the sequential scan,
// which rests on DotBatch being bit-identical to Dot per (query, value) pair
// — not merely within tolerance.
func TestDotBatchBitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 7, 8, 17, 64, 192, 768} {
		for _, nq := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
			qs := randMat(rng, nq, dim)
			vs := randMat(rng, 7, dim)
			out := make([]float32, nq*len(vs))
			DotBatch(qs, vs, out)
			for i := range qs {
				for j := range vs {
					want := Dot(qs[i], vs[j])
					got := out[i*len(vs)+j]
					if math.Float32bits(got) != math.Float32bits(want) {
						t.Fatalf("dim=%d nq=%d DotBatch[%d][%d]=%b Dot=%b: not bit-identical",
							dim, nq, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestL2SqBatchBitIdenticalToL2Sq(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dim := range []int{1, 8, 17, 192} {
		for _, nq := range []int{1, 4, 5, 9} {
			qs := randMat(rng, nq, dim)
			vs := randMat(rng, 5, dim)
			out := make([]float32, nq*len(vs))
			L2SqBatch(qs, vs, out)
			for i := range qs {
				for j := range vs {
					want := L2Sq(qs[i], vs[j])
					got := out[i*len(vs)+j]
					if math.Float32bits(got) != math.Float32bits(want) {
						t.Fatalf("dim=%d nq=%d L2SqBatch[%d][%d]=%b L2Sq=%b: not bit-identical",
							dim, nq, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestDotBatchEmptyOperands(t *testing.T) {
	DotBatch(nil, nil, nil)                     // no queries, no values
	DotBatch([][]float32{{1, 2}}, nil, nil)     // no values: zero-width rows
	DotBatch(nil, [][]float32{{1, 2}}, nil)     // no queries
	L2SqBatch(nil, [][]float32{{1, 2, 3}}, nil) // ditto for the L2 kernel
	out := make([]float32, 4)
	DotBatch(randMat(rand.New(rand.NewSource(1)), 4, 0), randMat(rand.New(rand.NewSource(2)), 1, 0), out)
	for _, x := range out {
		if x != 0 {
			t.Fatalf("zero-dim dot = %v, want 0", x)
		}
	}
}

func TestDotBatchShortOutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short out slice")
		}
	}()
	DotBatch(randMat(rand.New(rand.NewSource(1)), 2, 4), randMat(rand.New(rand.NewSource(2)), 3, 4), make([]float32, 5))
}

// TopKDesc must return exactly the prefix the full sort would: same IDs,
// same order, ties included. Drawing scores from a tiny discrete set makes
// tie groups span the k boundary constantly, which is exactly the case a
// score-only selection heap gets wrong.
func TestTopKDescMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		scores := make([]float32, n)
		for i := range scores {
			scores[i] = float32(rng.Intn(4)) // dense ties
		}
		full := make([]Scored, n)
		for i, s := range scores {
			full[i] = Scored{ID: i, Score: s}
		}
		SortScoredDesc(full)
		for _, k := range []int{0, 1, 2, 3, n / 2, n - 1, n, n + 3} {
			got := TopKDesc(scores, k)
			want := full
			if k < 0 {
				k = 0
			}
			if k < len(want) {
				want = want[:k]
			}
			if k <= 0 {
				want = nil
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d entries, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d entry %d: got %+v, full sort gives %+v\nscores=%v",
						n, k, i, got[i], want[i], scores)
				}
			}
		}
	}
}

func TestTopKDescBitIdenticalScores(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scores := make([]float32, 500)
	for i := range scores {
		scores[i] = rng.Float32()
	}
	full := make([]Scored, len(scores))
	for i, s := range scores {
		full[i] = Scored{ID: i, Score: s}
	}
	SortScoredDesc(full)
	got := TopKDesc(scores, 20)
	for i := range got {
		if math.Float32bits(got[i].Score) != math.Float32bits(full[i].Score) {
			t.Fatalf("entry %d: score %b != %b", i, got[i].Score, full[i].Score)
		}
		if got[i].ID != full[i].ID {
			t.Fatalf("entry %d: ID %d != %d", i, got[i].ID, full[i].ID)
		}
	}
}

// The headline kernel comparison: one blocked DotBatch pass vs the same
// work as repeated single-query Dot calls. Regressions in the blocking
// show up as the two throughputs converging (see make bench-kernels).
func benchDotBatch(b *testing.B, nq, nv, dim int) {
	rng := rand.New(rand.NewSource(9))
	qs := randMat(rng, nq, dim)
	vs := randMat(rng, nv, dim)
	out := make([]float32, nq*nv)
	b.SetBytes(int64(nq) * int64(nv) * int64(dim) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotBatch(qs, vs, out)
	}
}

func benchDotLoop(b *testing.B, nq, nv, dim int) {
	rng := rand.New(rand.NewSource(9))
	qs := randMat(rng, nq, dim)
	vs := randMat(rng, nv, dim)
	out := make([]float32, nq*nv)
	b.SetBytes(int64(nq) * int64(nv) * int64(dim) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for qi, q := range qs {
			for vi, v := range vs {
				out[qi*nv+vi] = Dot(q, v)
			}
		}
	}
}

func BenchmarkDotBatch192x64(b *testing.B)    { benchDotBatch(b, 64, 64, 192) }
func BenchmarkDotRepeated192x64(b *testing.B) { benchDotLoop(b, 64, 64, 192) }
func BenchmarkDotBatch768x16(b *testing.B)    { benchDotBatch(b, 16, 64, 768) }
func BenchmarkDotRepeated768x16(b *testing.B) { benchDotLoop(b, 16, 64, 768) }

func BenchmarkL2SqBatch192x64(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	qs := randMat(rng, 64, 192)
	vs := randMat(rng, 64, 192)
	out := make([]float32, len(qs)*len(vs))
	b.SetBytes(int64(len(qs)) * int64(len(vs)) * 192 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SqBatch(qs, vs, out)
	}
}

func BenchmarkTopKDesc20of10000(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	scores := make([]float32, 10000)
	for i := range scores {
		scores[i] = rng.Float32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKDesc(scores, 20)
	}
}

func BenchmarkFullSort10000(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	scores := make([]float32, 10000)
	for i := range scores {
		scores[i] = rng.Float32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scored := make([]Scored, len(scores))
		for j, s := range scores {
			scored[j] = Scored{ID: j, Score: s}
		}
		SortScoredDesc(scored)
	}
}
