//go:build amd64

package vec

// The amd64 batched kernels run their 8-wide bodies in SSE2 assembly
// (dotbatch_amd64.s). Bit-identity with the scalar kernels is preserved by
// construction: Dot keeps four independent accumulator chains where chain j
// receives a[i+j]*b[i+j] + a[i+4+j]*b[i+4+j] per 8-element block, and the
// assembly maps chain j onto SSE lane j of one XMM accumulator — MULPS and
// ADDPS round each lane exactly like the scalar MULSS/ADDSS sequence, in the
// same order. The Go wrappers combine the four lanes as (s0+s1)+(s2+s3) and
// run the scalar remainder loop, completing the exact Dot/L2Sq recipe.
//
// SSE2 is in the amd64 baseline, so there is no runtime feature dispatch.

const batchKernelAsm = true

//go:noescape
func dot4x8(q0, q1, q2, q3, v *float32, iters int, out *[16]float32)

//go:noescape
func l2sq4x8(q0, q1, q2, q3, v *float32, iters int, out *[16]float32)

// dot4Asm computes four dot products against a shared value vector via the
// SSE2 body. Caller guarantees len(v) >= 8 and all lengths equal.
func dot4Asm(q0, q1, q2, q3, v []float32) (o0, o1, o2, o3 float32) {
	n := len(v)
	iters := n / 8
	var acc [16]float32
	dot4x8(&q0[0], &q1[0], &q2[0], &q3[0], &v[0], iters, &acc)
	o0 = (acc[0] + acc[1]) + (acc[2] + acc[3])
	o1 = (acc[4] + acc[5]) + (acc[6] + acc[7])
	o2 = (acc[8] + acc[9]) + (acc[10] + acc[11])
	o3 = (acc[12] + acc[13]) + (acc[14] + acc[15])
	for i := iters * 8; i < n; i++ {
		x := v[i]
		o0 += q0[i] * x
		o1 += q1[i] * x
		o2 += q2[i] * x
		o3 += q3[i] * x
	}
	return o0, o1, o2, o3
}

// l2sq4Asm is dot4Asm's squared-distance twin.
func l2sq4Asm(q0, q1, q2, q3, v []float32) (o0, o1, o2, o3 float32) {
	n := len(v)
	iters := n / 8
	var acc [16]float32
	l2sq4x8(&q0[0], &q1[0], &q2[0], &q3[0], &v[0], iters, &acc)
	o0 = (acc[0] + acc[1]) + (acc[2] + acc[3])
	o1 = (acc[4] + acc[5]) + (acc[6] + acc[7])
	o2 = (acc[8] + acc[9]) + (acc[10] + acc[11])
	o3 = (acc[12] + acc[13]) + (acc[14] + acc[15])
	for i := iters * 8; i < n; i++ {
		x := v[i]
		e0 := q0[i] - x
		o0 += e0 * e0
		e1 := q1[i] - x
		o1 += e1 * e1
		e2 := q2[i] - x
		o2 += e2 * e2
		e3 := q3[i] - x
		o3 += e3 * e3
	}
	return o0, o1, o2, o3
}
