package httpapi

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"

	"semdisco"
)

// maxBatchQueries caps one /v1/search/batch request: large enough for the
// batch sizes that saturate the blocked kernels (the bench uses 64), small
// enough that one request cannot monopolize the server.
const maxBatchQueries = 256

// BatchQueryJSON is one item of a /v1/search/batch request.
type BatchQueryJSON struct {
	Query string `json:"query"`
	K     int    `json:"k"`
}

// BatchSearchRequest is the body of /v1/search/batch.
type BatchSearchRequest struct {
	Queries []BatchQueryJSON `json:"queries"`
}

// BatchItemJSON is one query's slice of a /v1/search/batch response,
// positionally aligned with the request's queries. The cluster-mode fields
// (degraded, shard_errors, cache_hit, coalesced) mirror /v1/search.
type BatchItemJSON struct {
	Matches []MatchJSON `json:"matches"`
	// Cost is this item's work accounting. A coalesced or cached item
	// reports zero cost: the scan was charged to the request it shared.
	Cost        *semdisco.CostReport `json:"cost,omitempty"`
	Degraded    bool                 `json:"degraded,omitempty"`
	ShardErrors []string             `json:"shard_errors,omitempty"`
	CacheHit    bool                 `json:"cache_hit,omitempty"`
	// Coalesced reports the item shared another identical in-flight or
	// in-batch (query, k) request's scan instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
}

// BatchSearchResponse is the body returned by /v1/search/batch.
type BatchSearchResponse struct {
	Results []BatchItemJSON `json:"results"`
}

// handleSearchBatch answers POST /v1/search/batch: a block of queries
// executed in one fused pass — one blocked scan scoring every query per
// corpus chunk in engine mode, one scatter-gather per shard for the whole
// block in cluster mode. Results are positionally aligned with the request.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries is required")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries))
		return
	}
	queries := make([]semdisco.Query, len(req.Queries))
	for i, q := range req.Queries {
		if q.Query == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("queries[%d].query is required", i))
			return
		}
		k := q.K
		if k <= 0 {
			k = 10
		}
		if k > 1000 {
			k = 1000
		}
		queries[i] = semdisco.Query{Text: q.Query, K: k}
	}
	annotate(r, slog.Int("batch", len(queries)))

	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := BatchSearchResponse{Results: make([]BatchItemJSON, len(queries))}
	if s.cluster != nil || s.coord != nil {
		var (
			results []*semdisco.ClusterResult
			err     error
		)
		if s.coord != nil {
			results, err = s.coord.SearchBatch(r.Context(), queries)
		} else {
			results, err = s.cluster.SearchBatch(r.Context(), queries)
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		for i, res := range results {
			cost := res.Cost
			item := BatchItemJSON{
				Matches:   matchesJSON(res.Matches),
				Cost:      &cost,
				Degraded:  res.Degraded,
				CacheHit:  res.CacheHit,
				Coalesced: res.Coalesced,
			}
			for _, se := range res.ShardErrors {
				item.ShardErrors = append(item.ShardErrors, se.Error())
			}
			resp.Results[i] = item
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	results, err := s.eng.SearchBatch(r.Context(), queries)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	for i, res := range results {
		cost := res.Cost
		resp.Results[i] = BatchItemJSON{Matches: matchesJSON(res.Matches), Cost: &cost}
	}
	writeJSON(w, http.StatusOK, resp)
}

// matchesJSON converts matches to their wire form.
func matchesJSON(ms []semdisco.Match) []MatchJSON {
	out := make([]MatchJSON, len(ms))
	for i, m := range ms {
		out[i] = MatchJSON{RelationID: m.RelationID, Score: m.Score}
	}
	return out
}
