package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"semdisco"
)

func burst(t *testing.T, srv *Server, queries ...string) {
	t.Helper()
	for _, q := range queries {
		rec, body := do(t, srv, "POST", "/v1/search", `{"query":"`+q+`","k":3}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("search %q = %d %s", q, rec.Code, body)
		}
	}
}

func TestDebugSlowEndpoint(t *testing.T) {
	srv := testServer(t)
	burst(t, srv, "COVID", "quartz hardness", "coronavirus vaccines")

	rec, body := do(t, srv, "GET", "/v1/debug/slow", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/slow=%d %s", rec.Code, body)
	}
	var resp SlowQueriesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Recorded != 3 || len(resp.SlowQueries) != 3 {
		t.Fatalf("resp=%+v", resp)
	}
	for i, sq := range resp.SlowQueries {
		if sq.Method != "ANNS" || sq.Query == "" || len(sq.Stages) == 0 {
			t.Fatalf("record %d = %+v", i, sq)
		}
		if i > 0 && sq.DurationMS > resp.SlowQueries[i-1].DurationMS {
			t.Fatal("not sorted slowest-first")
		}
	}

	// ?n bounds the response.
	rec, body = do(t, srv, "GET", "/v1/debug/slow?n=1", "")
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || len(resp.SlowQueries) != 1 {
		t.Fatalf("n=1: %d %+v", rec.Code, resp)
	}
}

func TestDebugSlowBadParams(t *testing.T) {
	srv := testServer(t)
	for _, q := range []string{"?n=abc", "?n=-1", "?n=1e3"} {
		rec, body := do(t, srv, "GET", "/v1/debug/slow"+q, "")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code=%d %s", q, rec.Code, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body=%s", q, body)
		}
	}
	// Oversized n is clamped, not rejected.
	rec, _ := do(t, srv, "GET", "/v1/debug/slow?n=100000", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("huge n: code=%d", rec.Code)
	}
	// Wrong method gets the JSON 405.
	rec, _ = do(t, srv, "POST", "/v1/debug/slow", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: code=%d", rec.Code)
	}
}

func TestDebugIndexEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "GET", "/v1/debug/index", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/index=%d %s", rec.Code, body)
	}
	var h IndexDebugResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Method != "ANNS" || h.Values == 0 || h.Graph == nil {
		t.Fatalf("health=%+v", h)
	}
	if h.Graph.ReachableFraction != 1 {
		t.Fatalf("graph=%+v", h.Graph)
	}
	if h.Segments.Segments != 1 || h.Segments.LiveRelations == 0 {
		t.Fatalf("segments=%+v", h.Segments)
	}
	// A delete shows up in the debug segment stats.
	if rec, _ := do(t, srv, "DELETE", "/v1/relations/minerals", ""); rec.Code != http.StatusOK {
		t.Fatalf("delete=%d", rec.Code)
	}
	_, body = do(t, srv, "GET", "/v1/debug/index", "")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Segments.DeadRelations != 1 {
		t.Fatalf("segments after delete=%+v", h.Segments)
	}
}

func TestDebugRecallEndpoint(t *testing.T) {
	srv := testServer(t)
	burst(t, srv, "COVID")
	rec, body := do(t, srv, "GET", "/v1/debug/recall?k=3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/recall=%d %s", rec.Code, body)
	}
	var res semdisco.RecallResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Method != "ANNS" || res.K != 3 || res.Recall < 0 || res.Recall > 1 {
		t.Fatalf("res=%+v", res)
	}

	for _, q := range []string{"?k=abc", "?k=-2"} {
		rec, _ := do(t, srv, "GET", "/v1/debug/recall"+q, "")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code=%d", q, rec.Code)
		}
	}
}

func TestDebugRecallBusy(t *testing.T) {
	srv := testServer(t)
	srv.probeMu.Lock()
	defer srv.probeMu.Unlock()
	rec, body := do(t, srv, "GET", "/v1/debug/recall", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("busy probe: code=%d %s", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
}

func TestDebugJournalEndpoint(t *testing.T) {
	srv := testServer(t)
	// Re-arm diagnostics so every query journals a sampled trace.
	srv.eng.ConfigureDiagnostics(semdisco.DiagnosticsConfig{TraceSampleEvery: 1})
	burst(t, srv, "COVID", "quartz")

	rec, body := do(t, srv, "GET", "/v1/debug/journal", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/journal=%d %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type=%q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal lines=%d body=%s", len(lines), body)
	}
	var ev struct {
		Kind       string  `json:"kind"`
		Query      string  `json:"query"`
		DurationMS float64 `json:"duration_ms"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "sampled" || ev.Query == "" {
		t.Fatalf("event=%+v", ev)
	}
}

func TestDebugJournalDisabled(t *testing.T) {
	srv := testServer(t)
	srv.eng.ConfigureDiagnostics(semdisco.DiagnosticsConfig{Disable: true})
	rec, _ := do(t, srv, "GET", "/v1/debug/journal", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled journal: code=%d", rec.Code)
	}
}

func TestStartRecallProbe(t *testing.T) {
	srv := testServer(t)
	done := make(chan struct{})
	srv.StartRecallProbe(done, 5*time.Millisecond, 3)
	defer close(done)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		snap := srv.eng.MetricsRegistry().Snapshot()
		for name := range snap.Gauges {
			if strings.HasPrefix(name, "semdisco_recall_at_k") {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("periodic probe never exported a recall gauge")
}
