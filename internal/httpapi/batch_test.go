package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestBatchSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search/batch",
		`{"queries":[{"query":"COVID","k":1},{"query":"Quartz","k":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch=%d %s", rec.Code, body)
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if len(resp.Results[0].Matches) != 1 || resp.Results[0].Matches[0].RelationID != "vaccines" {
		t.Fatalf("item 0: %+v", resp.Results[0])
	}
	if resp.Results[0].Cost == nil || resp.Results[0].Cost.DistanceComps == 0 {
		t.Errorf("item 0 missing cost accounting: %+v", resp.Results[0].Cost)
	}

	// Each item must equal the single-query endpoint's answer.
	rec, single := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d", rec.Code)
	}
	var sr SearchResponse
	if err := json.Unmarshal(single, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Matches[0] != resp.Results[0].Matches[0] {
		t.Errorf("batch %+v vs single %+v", resp.Results[0].Matches[0], sr.Matches[0])
	}
}

func TestBatchSearchEndpointCluster(t *testing.T) {
	srv := testClusterServer(t)
	rec, body := do(t, srv, "POST", "/v1/search/batch",
		`{"queries":[{"query":"common","k":5},{"query":"common","k":5},{"query":"val1","k":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch=%d %s", rec.Code, body)
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if len(resp.Results[0].Matches) == 0 || len(resp.Results[2].Matches) == 0 {
		t.Fatalf("empty matches: %+v", resp.Results)
	}
	// The duplicate item coalesces onto the first slot.
	if !resp.Results[1].Coalesced {
		t.Errorf("duplicate item not coalesced: %+v", resp.Results[1])
	}
	if len(resp.Results[1].Matches) != len(resp.Results[0].Matches) {
		t.Errorf("coalesced item lost matches: %d vs %d",
			len(resp.Results[1].Matches), len(resp.Results[0].Matches))
	}
}

func TestBatchSearchEndpointValidation(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"queries":[]}`},
		{"missing", `{}`},
		{"blank query", `{"queries":[{"query":"","k":1}]}`},
		{"garbage", `{`},
	} {
		rec, _ := do(t, srv, "POST", "/v1/search/batch", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code=%d, want 400", tc.name, rec.Code)
		}
	}
	// Over the batch cap.
	items := make([]string, maxBatchQueries+1)
	for i := range items {
		items[i] = fmt.Sprintf(`{"query":"q%d","k":1}`, i)
	}
	rec, _ := do(t, srv, "POST", "/v1/search/batch",
		`{"queries":[`+strings.Join(items, ",")+`]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: code=%d, want 400", rec.Code)
	}
	// Wrong method.
	rec, _ = do(t, srv, "GET", "/v1/search/batch", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: code=%d, want 405", rec.Code)
	}
}
