package httpapi

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"semdisco"
)

// Bounds on the debug endpoints: they exist for humans with curl, and must
// not become a way to make the server do unbounded work.
const (
	defaultSlowN  = 20  // /v1/debug/slow default ?n
	maxSlowN      = 100 // /v1/debug/slow cap on ?n
	defaultProbeK = 10  // /v1/debug/recall default ?k
	maxProbeK     = 50  // /v1/debug/recall cap on ?k
)

// SlowQueriesResponse is the body of /v1/debug/slow.
type SlowQueriesResponse struct {
	semdisco.SlowLogStats
	SlowQueries []semdisco.SlowQuery `json:"slow_queries"`
}

// queryInt parses an optional integer query parameter. Returns (def, true)
// when absent, (0, false) on garbage.
func queryInt(r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, false
	}
	return v, true
}

// handleDebugSlow serves the slow-query log: up to ?n records (default 20,
// capped at 100), slowest first, each with its full stage trace.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	n, ok := queryInt(r, "n", defaultSlowN)
	if !ok || n < 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{"n must be a non-negative integer"})
		return
	}
	if n == 0 {
		n = defaultSlowN
	}
	if n > maxSlowN {
		n = maxSlowN
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, SlowQueriesResponse{
		SlowLogStats: s.eng.SlowLogStats(),
		SlowQueries:  s.eng.SlowQueries(n),
	})
}

// handleDebugIndex serves the engine's index-health introspection: HNSW
// graph shape and reachability, PQ distortion, CTS cluster balance.
func (s *Server) handleDebugIndex(w http.ResponseWriter, _ *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, s.eng.IndexHealth())
}

// handleDebugRecall runs one online recall probe at ?k (default 10,
// clamped to [1,50]). Probes are expensive — one exhaustive scan per
// replayed query — so at most one runs at a time; concurrent requests get
// a 429 with Retry-After rather than queueing up probe work.
func (s *Server) handleDebugRecall(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	k, ok := queryInt(r, "k", defaultProbeK)
	if !ok || k < 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{"k must be a positive integer"})
		return
	}
	if k == 0 {
		k = defaultProbeK
	}
	if k > maxProbeK {
		k = maxProbeK
	}
	if !s.probeMu.TryLock() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{"a recall probe is already running"})
		return
	}
	defer s.probeMu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.eng.RecallProbe(k)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDebugJournal streams the structured event journal (slow and
// sampled query traces) as JSON lines, oldest first.
func (s *Server) handleDebugJournal(w http.ResponseWriter, _ *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	j := s.eng.Journal()
	if j == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{"diagnostics are disabled on this engine"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = j.WriteJSONL(w)
}

// StartRecallProbe launches a goroutine probing recall@k every interval
// until ctx is done (used by semdisco-serve's -recall-probe-interval).
// Each probe takes the server's read lock, so probes never race adds, and
// the probe mutex, so they never pile up behind a slow manual probe.
func (s *Server) StartRecallProbe(done <-chan struct{}, interval time.Duration, k int) {
	if interval <= 0 || s.eng == nil {
		return
	}
	if k <= 0 {
		k = defaultProbeK
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if !s.probeMu.TryLock() {
					continue
				}
				s.mu.RLock()
				res, err := s.eng.RecallProbe(k)
				s.mu.RUnlock()
				s.probeMu.Unlock()
				if s.log != nil {
					if err != nil {
						s.log.Error("recall probe", "err", err)
					} else {
						s.log.Info("recall probe",
							"method", res.Method, "k", res.K,
							"recall", fmt.Sprintf("%.3f", res.Recall),
							"probed", res.Probed, "source", res.Source)
					}
				}
			}
		}
	}()
}
