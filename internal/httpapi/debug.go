package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"semdisco"
)

// Bounds on the debug endpoints: they exist for humans with curl, and must
// not become a way to make the server do unbounded work.
const (
	defaultSlowN  = 20   // /v1/debug/slow default ?n
	maxSlowN      = 100  // /v1/debug/slow cap on ?n
	defaultProbeK = 10   // /v1/debug/recall default ?k
	maxProbeK     = 50   // /v1/debug/recall cap on ?k
	maxJournalN   = 1000 // /v1/debug/journal cap on ?n
)

// SlowQueriesResponse is the body of /v1/debug/slow.
type SlowQueriesResponse struct {
	semdisco.SlowLogStats
	SlowQueries []semdisco.SlowQuery `json:"slow_queries"`
}

// queryInt parses an optional integer query parameter. Returns (def, true)
// when absent, (0, false) on garbage.
func queryInt(r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, false
	}
	return v, true
}

// limitParam is the one clamping convention every list-style debug
// endpoint shares: an absent or explicit-zero ?name= selects def, a
// negative or non-numeric value rejects (the caller answers 400), and
// values above max clamp to max. A def of 0 means "no limit" (the
// journal's natural default — its retention is already bounded).
func limitParam(r *http.Request, name string, def, max int) (int, bool) {
	n, ok := queryInt(r, name, def)
	if !ok || n < 0 {
		return 0, false
	}
	if n == 0 {
		n = def
	}
	if n > max {
		n = max
	}
	return n, true
}

// handleDebugSlow serves the slow-query log: up to ?n records (default 20,
// capped at 100), slowest first, each with its full stage trace.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	n, ok := limitParam(r, "n", defaultSlowN, maxSlowN)
	if !ok {
		writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, SlowQueriesResponse{
		SlowLogStats: s.eng.SlowLogStats(),
		SlowQueries:  s.eng.SlowQueries(n),
	})
}

// IndexDebugResponse is the body of /v1/debug/index: the engine's index
// health plus the segment store's shape (segment counts, tombstoned
// volume, seal and compaction counters).
type IndexDebugResponse struct {
	semdisco.IndexHealth
	Segments semdisco.SegmentStats `json:"segments"`
}

// handleDebugIndex serves the engine's index-health introspection: HNSW
// graph shape and reachability, PQ distortion, CTS cluster balance, and
// the segment store's compaction state.
func (s *Server) handleDebugIndex(w http.ResponseWriter, _ *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, IndexDebugResponse{
		IndexHealth: s.eng.IndexHealth(),
		Segments:    s.eng.SegmentStats(),
	})
}

// handleDebugRecall runs one online recall probe at ?k (default 10,
// clamped to [1,50]). Probes are expensive — one exhaustive scan per
// replayed query — so at most one runs at a time; concurrent requests get
// a 429 with Retry-After rather than queueing up probe work.
func (s *Server) handleDebugRecall(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	k, ok := limitParam(r, "k", defaultProbeK, maxProbeK)
	if !ok {
		writeError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	if !s.probeMu.TryLock() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "a recall probe is already running")
		return
	}
	defer s.probeMu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.eng.RecallProbe(k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDebugJournal streams the structured event journal (slow and
// sampled query traces) as JSON lines, oldest first. ?n limits the stream
// to the newest n events (absent or 0 streams everything retained, capped
// at 1000); negative or non-numeric values are rejected, the same
// convention as the other list endpoints.
func (s *Server) handleDebugJournal(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	n, ok := limitParam(r, "n", 0, maxJournalN)
	if !ok {
		writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
		return
	}
	j := s.eng.Journal()
	if j == nil {
		writeError(w, http.StatusNotFound, "diagnostics are disabled on this engine")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, e := range j.Events(n) {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

// StartRecallProbe launches a goroutine probing recall@k every interval
// until ctx is done (used by semdisco-serve's -recall-probe-interval).
// Each probe takes the server's read lock, so probes never race adds, and
// the probe mutex, so they never pile up behind a slow manual probe.
func (s *Server) StartRecallProbe(done <-chan struct{}, interval time.Duration, k int) {
	if interval <= 0 || s.eng == nil {
		return
	}
	if k <= 0 {
		k = defaultProbeK
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if !s.probeMu.TryLock() {
					continue
				}
				s.mu.RLock()
				res, err := s.eng.RecallProbe(k)
				s.mu.RUnlock()
				s.probeMu.Unlock()
				if s.log != nil {
					if err != nil {
						s.log.Error("recall probe", "err", err)
					} else {
						s.log.Info("recall probe",
							"method", res.Method, "k", res.K,
							"recall", fmt.Sprintf("%.3f", res.Recall),
							"probed", res.Probed, "source", res.Source)
					}
				}
			}
		}
	}()
}
