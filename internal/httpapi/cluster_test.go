package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"semdisco"
)

func testClusterServer(t *testing.T) *Server {
	t.Helper()
	fed := semdisco.NewFederation()
	for i := 0; i < 8; i++ {
		r := &semdisco.Relation{
			ID:      fmt.Sprintf("rel-%d", i),
			Source:  "src",
			Columns: []string{"a", "b"},
			Rows:    [][]string{{fmt.Sprintf("val%d", i), "common"}},
		}
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := semdisco.NewCluster(fed, semdisco.ClusterConfig{
		Config:    semdisco.Config{Method: semdisco.ExS, Dim: 64, Seed: 1},
		Shards:    2,
		Policy:    semdisco.ShardRoundRobin,
		CacheSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(cl)
}

func TestClusterSearchEndpoint(t *testing.T) {
	srv := testClusterServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"common","k":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches")
	}
	if resp.Degraded {
		t.Fatal("unexpected degradation")
	}
	// Second identical query comes from the cluster's result cache.
	_, body = do(t, srv, "POST", "/v1/search", `{"query":"common","k":5}`)
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("second search should report cache_hit")
	}
}

func TestClusterTracedSearchEndpoint(t *testing.T) {
	srv := testClusterServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"val3","k":3,"trace":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("no trace in response")
	}
	names := make(map[string]bool)
	for _, s := range resp.Trace.Stages {
		names[s.Name] = true
	}
	for _, want := range []string{"encode", "scatter", "merge"} {
		if !names[want] {
			t.Errorf("missing stage %q", want)
		}
	}
}

func TestClusterStatsEndpoint(t *testing.T) {
	srv := testClusterServer(t)
	do(t, srv, "POST", "/v1/search", `{"query":"common","k":5}`)
	rec, body := do(t, srv, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cluster == nil {
		t.Fatal("stats response carries no cluster section")
	}
	if len(resp.Cluster.Shards) != 2 {
		t.Fatalf("shard health entries: %d, want 2", len(resp.Cluster.Shards))
	}
	if resp.Cluster.Shards[0].Relations != 4 || resp.Cluster.Shards[1].Relations != 4 {
		t.Errorf("shard relation counts: %+v", resp.Cluster.Shards)
	}
}

func TestClusterAddRelationEndpoint(t *testing.T) {
	srv := testClusterServer(t)
	rec, body := do(t, srv, "POST", "/v1/relations",
		`{"id":"rel-new","source":"src","columns":["a"],"rows":[["fresh"]]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	rec, body = do(t, srv, "POST", "/v1/search", `{"query":"fresh","k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range resp.Matches {
		if m.RelationID == "rel-new" {
			found = true
		}
	}
	if !found {
		t.Errorf("added relation not found: %+v", resp.Matches)
	}
}

func TestClusterDeleteRelationEndpoint(t *testing.T) {
	srv := testClusterServer(t)
	// Warm the router's result cache with a query the victim answers.
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"common","k":8}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	rec, body = do(t, srv, "DELETE", "/v1/relations/rel-3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete=%d %s", rec.Code, body)
	}
	// The delete must have purged the cache: the same query is answered
	// fresh and no longer serves the tombstoned relation.
	rec, body = do(t, srv, "POST", "/v1/search", `{"query":"common","k":8}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("stale cache entry served after delete")
	}
	for _, m := range resp.Matches {
		if m.RelationID == "rel-3" {
			t.Fatalf("deleted relation still served: %+v", resp.Matches)
		}
	}
	rec, _ = do(t, srv, "DELETE", "/v1/relations/rel-3", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double delete=%d, want 404", rec.Code)
	}
}

func TestClusterEngineOnlyEndpoints(t *testing.T) {
	srv := testClusterServer(t)
	for _, path := range []string{"/v1/debug/slow", "/v1/debug/index", "/v1/debug/recall", "/v1/debug/journal"} {
		rec, _ := do(t, srv, "GET", path, "")
		if rec.Code != http.StatusNotImplemented {
			t.Errorf("%s: status %d, want 501", path, rec.Code)
		}
	}
	rec, _ := do(t, srv, "POST", "/v1/datasets", `{"query":"common","k":3}`)
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("/v1/datasets: status %d, want 501", rec.Code)
	}
	rec, _ = do(t, srv, "POST", "/v1/search", `{"query":"common","k":3,"sources":["src"]}`)
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("sourced search: status %d, want 501", rec.Code)
	}
}
