package httpapi

import (
	"net/http"
	"sort"

	"semdisco"
	"semdisco/internal/obs"
)

// Bounds on the trace debug endpoint, same rationale as the slow-log caps.
const (
	defaultTracesN = 20  // /v1/debug/traces default ?n
	maxTracesN     = 100 // /v1/debug/traces cap on ?n
)

// traces returns whichever backend's trace store the server fronts; nil
// when tracing is disabled (a nil *obs.TraceStore is a valid no-op, but
// the handlers distinguish it to answer 404 honestly).
func (s *Server) traces() *obs.TraceStore {
	switch {
	case s.coord != nil:
		return s.coord.Traces()
	case s.cluster != nil:
		return s.cluster.Traces()
	}
	return s.eng.Traces()
}

// TracesResponse is the body of /v1/debug/traces: store volume counters
// and the retained traces, newest first.
type TracesResponse struct {
	// Offered counts every trace submitted to the store; Kept the ones
	// retained (tail criteria or head sample); Evicted the retained traces
	// later pushed out of the ring.
	Offered int64                  `json:"offered"`
	Kept    int64                  `json:"kept"`
	Evicted int64                  `json:"evicted"`
	Traces  []semdisco.StoredTrace `json:"traces"`
}

// SpanTreeJSON is one node of a rendered span tree: the stored span plus
// its children, ordered by start offset.
type SpanTreeJSON struct {
	SpanID        string            `json:"span_id"`
	ParentID      string            `json:"parent_id,omitempty"`
	Name          string            `json:"name"`
	StartOffsetMS float64           `json:"start_offset_ms"`
	DurationMS    float64           `json:"duration_ms"`
	Annotations   map[string]string `json:"annotations,omitempty"`
	Children      []*SpanTreeJSON   `json:"children,omitempty"`
}

// TraceResponse is the body of /v1/debug/traces/{id}: the stored trace
// with its flat span list rendered as a tree.
type TraceResponse struct {
	semdisco.StoredTrace
	// Tree is the span forest: the root span(s) with children nested. A
	// span whose parent is not in the trace (e.g. the root of a propagated
	// trace, parented to the remote caller's span) appears as a top-level
	// node.
	Tree []*SpanTreeJSON `json:"tree"`
}

// SpanTree renders a stored trace's flat span list as a forest: children
// nested under parents, siblings ordered by start offset. Spans whose
// parent is absent from the trace — the root, or orphans whose parent
// never ended — surface as top-level nodes.
func SpanTree(spans []obs.StoredSpan) []*SpanTreeJSON {
	nodes := make(map[string]*SpanTreeJSON, len(spans))
	order := make([]*SpanTreeJSON, 0, len(spans))
	for _, sp := range spans {
		n := &SpanTreeJSON{
			SpanID:        sp.SpanID,
			ParentID:      sp.ParentID,
			Name:          sp.Name,
			StartOffsetMS: sp.StartOffsetMS,
			DurationMS:    sp.DurationMS,
			Annotations:   sp.Annotations,
		}
		nodes[sp.SpanID] = n
		order = append(order, n)
	}
	var roots []*SpanTreeJSON
	for _, n := range order {
		if p, ok := nodes[n.ParentID]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*SpanTreeJSON) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartOffsetMS < ns[j].StartOffsetMS })
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
	}
	return roots
}

// handleDebugTraces lists the retained traces, newest first: up to ?n
// (default 20, capped at 100). ?format=jsonl streams every retained trace
// as JSON lines, oldest first, for offline analysis.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	store := s.traces()
	if store == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled on this server")
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = store.WriteJSONL(w)
		return
	}
	n, ok := limitParam(r, "n", defaultTracesN, maxTracesN)
	if !ok {
		writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
		return
	}
	writeJSON(w, http.StatusOK, TracesResponse{
		Offered: store.Offered(),
		Kept:    store.Kept(),
		Evicted: store.Evicted(),
		Traces:  store.List(n),
	})
}

// handleDebugTrace fetches one retained trace by hex trace ID and renders
// its span tree.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	store := s.traces()
	if store == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled on this server")
		return
	}
	id := r.PathValue("id")
	st, ok := store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained trace " + id + "; only interesting or head-sampled traces are stored")
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{StoredTrace: st, Tree: SpanTree(st.Spans)})
}
