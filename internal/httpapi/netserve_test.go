package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"semdisco"
	"semdisco/internal/netcluster"
)

// netFed builds n deterministic relations with overlapping vocabulary, the
// same shape the root cluster tests use.
func netFed(t *testing.T, n int) *semdisco.Federation {
	t.Helper()
	fed := semdisco.NewFederation()
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(i, j int) string {
		return string(letters[(i+j)%26]) + string(letters[(i*3+j)%26]) + string(letters[(i*7+j*5)%26])
	}
	for i := 0; i < n; i++ {
		r := &semdisco.Relation{
			ID:      fmt.Sprintf("rel-%03d", i),
			Source:  fmt.Sprintf("src-%d", i%3),
			Columns: []string{"a", "b"},
			Rows: [][]string{
				{word(i, 0), word(i, 1)},
				{word(i, 2), word(i, 3)},
			},
		}
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return fed
}

// coordServer stands up the full networked stack over httpapi itself:
// every replica is a complete httpapi.New shard server (public API plus
// the internal wire endpoints), and the returned Server fronts a
// NetCoordinator over them — the deployment cmd/semdisco-serve assembles,
// in-process.
func coordServer(t *testing.T) (*Server, *semdisco.Engine) {
	t.Helper()
	fed := netFed(t, 24)
	cfg := semdisco.Config{Method: semdisco.ExS, Dim: 64, Seed: 1}
	single, err := semdisco.Open(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const sets, reps = 2, 2
	replicaSets := make([][]string, sets)
	for s := 0; s < sets; s++ {
		for r := 0; r < reps; r++ {
			eng, err := semdisco.NewNetShard(fed, semdisco.NetShardConfig{Config: cfg, Sets: sets, Set: s})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(New(eng))
			t.Cleanup(srv.Close)
			replicaSets[s] = append(replicaSets[s], srv.URL)
		}
	}
	nc, err := semdisco.NewNetCoordinator(fed, replicaSets, semdisco.NetCoordinatorConfig{
		Config:         cfg,
		AttemptTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewCoordinator(nc), single
}

func TestCoordinatorServerSearch(t *testing.T) {
	srv, single := coordServer(t)
	for _, q := range []string{"abc", "mno", "xyz qrs"} {
		body := fmt.Sprintf(`{"query":%q,"k":5}`, q)
		rec, out := do(t, srv, "POST", "/v1/search", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("search %q = %d: %s", q, rec.Code, out)
		}
		var resp SearchResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("search %q degraded: %v", q, resp.ShardErrors)
		}
		want, err := single.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Matches) != len(want) {
			t.Fatalf("search %q: %d matches, engine returned %d", q, len(resp.Matches), len(want))
		}
		for i := range want {
			if resp.Matches[i].RelationID != want[i].RelationID || resp.Matches[i].Score != want[i].Score {
				t.Fatalf("search %q match %d: %+v vs engine %+v", q, i, resp.Matches[i], want[i])
			}
		}
	}
}

func TestCoordinatorServerBatch(t *testing.T) {
	srv, single := coordServer(t)
	rec, out := do(t, srv, "POST", "/v1/search/batch",
		`{"queries":[{"query":"abc","k":3},{"query":"bfd","k":7}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, out)
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2", len(resp.Results))
	}
	for i, tc := range []struct {
		q string
		k int
	}{{"abc", 3}, {"bfd", 7}} {
		want, err := single.Search(tc.q, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i].Matches
		if len(got) != len(want) {
			t.Fatalf("item %d: %d matches, engine returned %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].RelationID != want[j].RelationID || got[j].Score != want[j].Score {
				t.Fatalf("item %d match %d: %+v vs engine %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestCoordinatorServerStats(t *testing.T) {
	srv, _ := coordServer(t)
	rec, out := do(t, srv, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, out)
	}
	var stats StatsResponse
	if err := json.Unmarshal(out, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Netcluster == nil {
		t.Fatal("coordinator stats carry no netcluster section")
	}
	if stats.Netcluster.Sets != 2 {
		t.Errorf("netcluster.sets = %d, want 2", stats.Netcluster.Sets)
	}
	if stats.Method != "ExS" || stats.NumRelations != 24 {
		t.Errorf("method=%q relations=%d, want ExS/24", stats.Method, stats.NumRelations)
	}
}

// TestCoordinatorServerWriteRoutes drives the replicated write path end to
// end over HTTP: ingest, update, delete, and the unified error bodies on
// the failure branches.
func TestCoordinatorServerWriteRoutes(t *testing.T) {
	srv, single := coordServer(t)

	rec, out := do(t, srv, "POST", "/v1/relations",
		`{"id":"rel-new","source":"src-9","columns":["a","b"],"rows":[["abc","def"],["mno","xyz"]]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("add = %d: %s", rec.Code, out)
	}
	if err := single.Add(&semdisco.Relation{
		ID: "rel-new", Source: "src-9",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"abc", "def"}, {"mno", "xyz"}},
	}); err != nil {
		t.Fatal(err)
	}
	rec, out = do(t, srv, "POST", "/v1/search", `{"query":"abc def","k":10}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search after add = %d: %s", rec.Code, out)
	}
	var sresp SearchResponse
	if err := json.Unmarshal(out, &sresp); err != nil {
		t.Fatal(err)
	}
	want, err := single.Search("abc def", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sresp.Matches[i].RelationID != want[i].RelationID {
			t.Fatalf("after add, match %d: %s vs engine %s",
				i, sresp.Matches[i].RelationID, want[i].RelationID)
		}
	}

	// PUT with a body whose ID contradicts the path is the caller's error.
	rec, out = do(t, srv, "PUT", "/v1/relations/rel-new",
		`{"id":"other","source":"src-9","columns":["a"],"rows":[["x"]]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched PUT = %d: %s", rec.Code, out)
	}
	rec, out = do(t, srv, "PUT", "/v1/relations/rel-new",
		`{"source":"src-9","columns":["a","b"],"rows":[["qrs","bfd"]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("update = %d: %s", rec.Code, out)
	}

	rec, out = do(t, srv, "DELETE", "/v1/relations/rel-new", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", rec.Code, out)
	}
	// Deleting again fails on every replica with 404; the coordinator must
	// surface the replicas' own status and the unified error body.
	rec, out = do(t, srv, "DELETE", "/v1/relations/rel-new", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d: %s", rec.Code, out)
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(out, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Code != netcluster.CodeNotFound || eresp.Error == "" {
		t.Fatalf("double delete body = %+v, want code %q", eresp, netcluster.CodeNotFound)
	}
}

// TestCoordinatorServerEngineOnlySurfaces: endpoints that need a local
// engine answer 501 with the unified body in coordinator mode, and the
// engine-only workload analytics endpoint honestly 404s.
func TestCoordinatorServerEngineOnlySurfaces(t *testing.T) {
	srv, _ := coordServer(t)
	rec, out := do(t, srv, "GET", "/v1/debug/index", "")
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("debug/index = %d: %s", rec.Code, out)
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(out, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Code != netcluster.CodeNotImplemented {
		t.Fatalf("code = %q, want %q", eresp.Code, netcluster.CodeNotImplemented)
	}
	rec, _ = do(t, srv, "GET", "/v1/debug/workload", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("debug/workload = %d, want 404", rec.Code)
	}
}
