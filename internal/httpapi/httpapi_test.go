package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semdisco"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	fed := semdisco.NewFederation()
	add := func(r *semdisco.Relation) {
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(&semdisco.Relation{
		ID: "vaccines", Source: "WHO",
		Columns: []string{"Region", "Vaccine"},
		Rows:    [][]string{{"Europe", "Vaxzevria"}, {"Asia", "CoronaVac"}},
	})
	add(&semdisco.Relation{
		ID: "minerals", Source: "USGS",
		Columns: []string{"Mineral", "Hardness"},
		Rows:    [][]string{{"Quartz", "7"}},
	})
	lex := semdisco.NewLexicon()
	lex.AddSynonyms("COVID", "coronavirus", "Vaxzevria", "CoronaVac")
	eng, err := semdisco.Open(fed, semdisco.Config{
		Method: semdisco.ANNS, Dim: 192, Seed: 1, Lexicon: lex,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

func do(t *testing.T, srv *Server, method, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthAndStats(t *testing.T) {
	srv := testServer(t)
	rec, _ := do(t, srv, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz=%d", rec.Code)
	}
	rec, body := do(t, srv, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats=%d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Method != "ANNS" || stats.NumValues == 0 {
		t.Fatalf("stats=%+v", stats)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].RelationID != "vaccines" {
		t.Fatalf("matches=%+v", resp.Matches)
	}
}

func TestSearchWithSources(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":5,"sources":["USGS"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	json.Unmarshal(body, &resp)
	for _, m := range resp.Matches {
		if m.RelationID == "vaccines" {
			t.Fatalf("source filter leaked: %+v", resp.Matches)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	srv := testServer(t)
	for _, body := range []string{"", "{", `{"k":3}`} {
		rec, _ := do(t, srv, "POST", "/v1/search", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code=%d", body, rec.Code)
		}
	}
	// Wrong method on a POST route.
	rec, _ := do(t, srv, "GET", "/v1/search", "")
	if rec.Code == http.StatusOK {
		t.Fatal("GET on POST route should not succeed")
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/datasets", `{"query":"COVID","k":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("datasets=%d %s", rec.Code, body)
	}
	var resp DatasetsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Datasets) == 0 || resp.Datasets[0].Source != "WHO" {
		t.Fatalf("datasets=%+v", resp.Datasets)
	}
}

func TestAddRelationEndpoint(t *testing.T) {
	srv := testServer(t)
	rel := RelationJSON{
		ID: "flu", Source: "WHO",
		Columns: []string{"Region", "Strain"},
		Rows:    [][]string{{"Europe", "influenza H1N1"}},
	}
	payload, _ := json.Marshal(rel)
	rec, body := do(t, srv, "POST", "/v1/relations", string(bytes.TrimSpace(payload)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("add=%d %s", rec.Code, body)
	}
	// The new relation is searchable.
	rec, body = do(t, srv, "POST", "/v1/search", `{"query":"influenza","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d", rec.Code)
	}
	var resp SearchResponse
	json.Unmarshal(body, &resp)
	if len(resp.Matches) == 0 || resp.Matches[0].RelationID != "flu" {
		t.Fatalf("added relation not searchable: %+v", resp.Matches)
	}
	// Duplicate add fails.
	rec, _ = do(t, srv, "POST", "/v1/relations", string(payload))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate add=%d", rec.Code)
	}
	// Invalid body fails.
	rec, _ = do(t, srv, "POST", "/v1/relations", "{")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body add=%d", rec.Code)
	}
}
