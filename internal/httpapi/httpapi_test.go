package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semdisco"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	fed := semdisco.NewFederation()
	add := func(r *semdisco.Relation) {
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(&semdisco.Relation{
		ID: "vaccines", Source: "WHO",
		Columns: []string{"Region", "Vaccine"},
		Rows:    [][]string{{"Europe", "Vaxzevria"}, {"Asia", "CoronaVac"}},
	})
	add(&semdisco.Relation{
		ID: "minerals", Source: "USGS",
		Columns: []string{"Mineral", "Hardness"},
		Rows:    [][]string{{"Quartz", "7"}},
	})
	lex := semdisco.NewLexicon()
	lex.AddSynonyms("COVID", "coronavirus", "Vaxzevria", "CoronaVac")
	eng, err := semdisco.Open(fed, semdisco.Config{
		Method: semdisco.ANNS, Dim: 192, Seed: 1, Lexicon: lex,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

func do(t *testing.T, srv *Server, method, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthAndStats(t *testing.T) {
	srv := testServer(t)
	rec, _ := do(t, srv, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz=%d", rec.Code)
	}
	rec, body := do(t, srv, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats=%d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Method != "ANNS" || stats.NumValues == 0 {
		t.Fatalf("stats=%+v", stats)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].RelationID != "vaccines" {
		t.Fatalf("matches=%+v", resp.Matches)
	}
}

func TestSearchWithSources(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":5,"sources":["USGS"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	json.Unmarshal(body, &resp)
	for _, m := range resp.Matches {
		if m.RelationID == "vaccines" {
			t.Fatalf("source filter leaked: %+v", resp.Matches)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	srv := testServer(t)
	for _, body := range []string{"", "{", `{"k":3}`} {
		rec, _ := do(t, srv, "POST", "/v1/search", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code=%d", body, rec.Code)
		}
	}
	// Wrong method on a POST route.
	rec, _ := do(t, srv, "GET", "/v1/search", "")
	if rec.Code == http.StatusOK {
		t.Fatal("GET on POST route should not succeed")
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/datasets", `{"query":"COVID","k":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("datasets=%d %s", rec.Code, body)
	}
	var resp DatasetsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Datasets) == 0 || resp.Datasets[0].Source != "WHO" {
		t.Fatalf("datasets=%+v", resp.Datasets)
	}
}

func TestAddRelationEndpoint(t *testing.T) {
	srv := testServer(t)
	rel := RelationJSON{
		ID: "flu", Source: "WHO",
		Columns: []string{"Region", "Strain"},
		Rows:    [][]string{{"Europe", "influenza H1N1"}},
	}
	payload, _ := json.Marshal(rel)
	rec, body := do(t, srv, "POST", "/v1/relations", string(bytes.TrimSpace(payload)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("add=%d %s", rec.Code, body)
	}
	// The new relation is searchable.
	rec, body = do(t, srv, "POST", "/v1/search", `{"query":"influenza","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d", rec.Code)
	}
	var resp SearchResponse
	json.Unmarshal(body, &resp)
	if len(resp.Matches) == 0 || resp.Matches[0].RelationID != "flu" {
		t.Fatalf("added relation not searchable: %+v", resp.Matches)
	}
	// Duplicate add fails.
	rec, _ = do(t, srv, "POST", "/v1/relations", string(payload))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate add=%d", rec.Code)
	}
	// Invalid body fails.
	rec, _ = do(t, srv, "POST", "/v1/relations", "{")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body add=%d", rec.Code)
	}
}

func TestDeleteRelationEndpoint(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "DELETE", "/v1/relations/minerals", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete=%d %s", rec.Code, body)
	}
	// The tombstoned relation stops matching.
	rec, body = do(t, srv, "POST", "/v1/search", `{"query":"mineral hardness","k":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d", rec.Code)
	}
	var resp SearchResponse
	json.Unmarshal(body, &resp)
	for _, m := range resp.Matches {
		if m.RelationID == "minerals" {
			t.Fatalf("deleted relation still served: %+v", resp.Matches)
		}
	}
	// Stats report the tombstone.
	rec, body = do(t, srv, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats=%d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Segments.DeadRelations != 1 || stats.NumRelations != 1 {
		t.Fatalf("segment stats after delete: %+v", stats.Segments)
	}
	// Unknown and repeated deletes get 404.
	for _, path := range []string{"/v1/relations/minerals", "/v1/relations/nope"} {
		rec, _ = do(t, srv, "DELETE", path, "")
		if rec.Code != http.StatusNotFound {
			t.Fatalf("delete %s=%d, want 404", path, rec.Code)
		}
	}
	// Wrong method on the delete route.
	rec, _ = do(t, srv, "POST", "/v1/relations/minerals", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method=%d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Run a search first so the search metrics exist.
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	rec, body = do(t, srv, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics=%d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type=%q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`semdisco_searches_total{method="ANNS"} 1`,
		`semdisco_search_seconds_bucket{method="ANNS",le="+Inf"} 1`,
		`semdisco_search_stage_seconds_count{method="ANNS",stage="encode"} 1`,
		"semdisco_embed_cache_hits_total",
		"semdisco_index_inserts_total",
		`semdisco_index_build_seconds{phase="hnsw_insert"}`,
		`semdisco_http_requests_total{path="POST /v1/search",code="200"} 1`,
		"# TYPE semdisco_search_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestTracedSearch(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1,"trace":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no matches")
	}
	if resp.Trace == nil {
		t.Fatal("trace requested but absent")
	}
	names := make(map[string]bool)
	for _, st := range resp.Trace.Stages {
		names[st.Name] = true
	}
	for _, want := range []string{"encode", "retrieve", "rank"} {
		if !names[want] {
			t.Errorf("trace missing stage %q (got %v)", want, resp.Trace.Stages)
		}
	}
	// Untraced search carries no trace.
	rec, body = do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	resp = SearchResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatalf("unexpected trace: %+v", resp.Trace)
	}
}

func TestStatsObservability(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 3; i++ {
		do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	}
	rec, body := do(t, srv, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats=%d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.Searches["ANNS"]; got != 3 {
		t.Fatalf("searches=%d want 3", got)
	}
	lat, ok := stats.SearchLatency["ANNS"]
	if !ok || lat.Count != 3 || lat.P95MS <= 0 {
		t.Fatalf("latency=%+v", stats.SearchLatency)
	}
	if stats.CacheHits+stats.CacheMisses == 0 {
		t.Fatal("cache counters empty")
	}
	if stats.BuildSeconds["embed"] <= 0 {
		t.Fatalf("build_seconds=%v", stats.BuildSeconds)
	}
	if stats.UptimeSeconds <= 0 {
		t.Fatal("uptime missing")
	}
}

func TestErrorBodies(t *testing.T) {
	srv := testServer(t)
	// Wrong method returns a JSON 405 with an Allow header.
	rec, body := do(t, srv, "GET", "/v1/search", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("code=%d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "POST" {
		t.Fatalf("allow=%q", allow)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("405 body %q not a JSON error: %v", body, err)
	}
	// Unknown route returns a JSON 404.
	rec, body = do(t, srv, "GET", "/nope", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("code=%d", rec.Code)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("404 body %q not a JSON error: %v", body, err)
	}
	// Malformed body returns a JSON 400.
	rec, body = do(t, srv, "POST", "/v1/search", "{")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code=%d", rec.Code)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("400 body %q not a JSON error: %v", body, err)
	}
}
