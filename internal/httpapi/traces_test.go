package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semdisco"
	"semdisco/internal/obs"
)

// keepAll retains every offered trace, making the debug endpoints
// deterministic under test.
var keepAll = semdisco.TracingConfig{HeadSampleEvery: 1}

func testTracedServer(t *testing.T) *Server {
	t.Helper()
	srv := testServer(t)
	srv.eng.ConfigureTracing(keepAll)
	return srv
}

func testTracedClusterServer(t *testing.T) *Server {
	t.Helper()
	srv := testClusterServer(t)
	srv.cluster.ConfigureTracing(keepAll)
	return srv
}

// doHdr is do with request headers.
func doHdr(t *testing.T, srv *Server, method, path, body string, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestTraceparentPropagation(t *testing.T) {
	srv := testTracedServer(t)
	const traceHex = "4bf92f3577b34da6a3ce929d0e0e4736"
	const spanHex = "00f067aa0ba902b7"
	inbound := "00-" + traceHex + "-" + spanHex + "-01"

	rec, body := doHdr(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`,
		map[string]string{"traceparent": inbound, "X-Request-Id": "req-42"})
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != traceHex {
		t.Errorf("X-Trace-Id = %q, want inbound trace ID %s", got, traceHex)
	}
	sc, ok := obs.ParseTraceparent(rec.Header().Get("Traceparent"))
	if !ok || sc.TraceID.String() != traceHex {
		t.Errorf("response Traceparent = %q, want trace %s", rec.Header().Get("Traceparent"), traceHex)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "req-42" {
		t.Errorf("X-Request-Id = %q, want the inbound req-42", got)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != traceHex {
		t.Errorf("body trace_id = %q, want %s", resp.TraceID, traceHex)
	}

	// The stored trace continues the inbound context: retrievable under the
	// caller's trace ID, its root span parented to the caller's span.
	rec, body = do(t, srv, "GET", "/v1/debug/traces/"+traceHex, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace fetch=%d %s", rec.Code, body)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != traceHex {
		t.Errorf("stored trace ID = %s, want %s", tr.TraceID, traceHex)
	}
	if tr.RequestID != "req-42" {
		t.Errorf("stored request ID = %q, want req-42", tr.RequestID)
	}
	if len(tr.Tree) != 1 {
		t.Fatalf("span forest has %d roots, want 1: %+v", len(tr.Tree), tr.Tree)
	}
	root := tr.Tree[0]
	if root.Name != "search" {
		t.Errorf("root span = %q, want search", root.Name)
	}
	if root.ParentID != spanHex {
		t.Errorf("root parent = %q, want the inbound span %s", root.ParentID, spanHex)
	}
	if len(root.Children) == 0 {
		t.Error("root span has no stage children")
	}
}

func TestMintedTraceIDWithoutInboundHeader(t *testing.T) {
	srv := testTracedServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	id := rec.Header().Get("X-Trace-Id")
	if _, ok := obs.ParseTraceID(id); !ok {
		t.Fatalf("minted X-Trace-Id %q is not a valid trace ID", id)
	}
	// Without an inbound X-Request-Id the trace ID doubles as correlation ID.
	if got := rec.Header().Get("X-Request-Id"); got != id {
		t.Errorf("X-Request-Id = %q, want the trace ID %s", got, id)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != id {
		t.Errorf("body trace_id = %q, header X-Trace-Id = %q; must match", resp.TraceID, id)
	}
	if rec, _ := do(t, srv, "GET", "/v1/debug/traces/"+id, ""); rec.Code != http.StatusOK {
		t.Errorf("minted trace not retrievable: %d", rec.Code)
	}
}

func TestDebugTracesList(t *testing.T) {
	srv := testTracedServer(t)
	var ids []string
	for _, q := range []string{"COVID", "Quartz", "Hardness"} {
		rec, _ := do(t, srv, "POST", "/v1/search", `{"query":"`+q+`","k":1}`)
		ids = append(ids, rec.Header().Get("X-Trace-Id"))
	}
	rec, body := do(t, srv, "GET", "/v1/debug/traces?n=2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list=%d %s", rec.Code, body)
	}
	var list TracesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Offered != 3 || list.Kept != 3 {
		t.Errorf("offered=%d kept=%d, want 3/3", list.Offered, list.Kept)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("listed %d traces, want the requested 2", len(list.Traces))
	}
	// Newest first.
	if list.Traces[0].TraceID != ids[2] || list.Traces[1].TraceID != ids[1] {
		t.Errorf("list order = %s, %s; want %s, %s",
			list.Traces[0].TraceID, list.Traces[1].TraceID, ids[2], ids[1])
	}

	// JSONL export: every retained trace, oldest first, one JSON doc a line.
	rec, body = do(t, srv, "GET", "/v1/debug/traces?format=jsonl", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("jsonl=%d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("jsonl content type = %q", ct)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	var lines int
	for sc.Scan() {
		var st semdisco.StoredTrace
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("jsonl line %d: %v", lines, err)
		}
		if st.TraceID != ids[lines] {
			t.Errorf("jsonl line %d = %s, want %s (oldest first)", lines, st.TraceID, ids[lines])
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("jsonl wrote %d lines, want 3", lines)
	}
}

func TestDebugTraceErrors(t *testing.T) {
	srv := testTracedServer(t)
	rec, _ := do(t, srv, "GET", "/v1/debug/traces/deadbeef", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace ID: %d, want 404", rec.Code)
	}
	rec, _ = do(t, srv, "GET", "/v1/debug/traces?n=bogus", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad n: %d, want 400", rec.Code)
	}

	// With tracing disabled, both endpoints answer 404 honestly.
	srv.eng.ConfigureTracing(semdisco.TracingConfig{Disable: true})
	for _, path := range []string{"/v1/debug/traces", "/v1/debug/traces/deadbeef"} {
		if rec, _ := do(t, srv, "GET", path, ""); rec.Code != http.StatusNotFound {
			t.Errorf("%s with tracing disabled: %d, want 404", path, rec.Code)
		}
	}
}

func TestClusterTraceSpanTree(t *testing.T) {
	srv := testTracedClusterServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"common","k":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("cluster response carries no trace_id")
	}
	if hdr := rec.Header().Get("X-Trace-Id"); hdr != resp.TraceID {
		t.Errorf("X-Trace-Id = %s, body trace_id = %s; must match", hdr, resp.TraceID)
	}

	rec, body = do(t, srv, "GET", "/v1/debug/traces/"+resp.TraceID, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace fetch=%d %s", rec.Code, body)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tree) != 1 || tr.Tree[0].Name != "cluster_search" {
		t.Fatalf("span forest = %+v, want one cluster_search root", tr.Tree)
	}
	stages := make(map[string]*SpanTreeJSON)
	for _, c := range tr.Tree[0].Children {
		stages[c.Name] = c
	}
	for _, want := range []string{"encode", "scatter", "merge"} {
		if stages[want] == nil {
			t.Fatalf("missing %q under the root; children = %v", want, tr.Tree[0].Children)
		}
	}
	// One shard attempt span per shard, nested under scatter.
	if got := len(stages["scatter"].Children); got != 2 {
		t.Errorf("scatter has %d shard children, want 2", got)
	}
	for _, sh := range stages["scatter"].Children {
		if sh.Name != "shard" || sh.Annotations["attempt"] != "primary" {
			t.Errorf("shard span = %s %v, want a primary shard attempt", sh.Name, sh.Annotations)
		}
	}
}

func TestMetricsExemplarsResolveToStoredTraces(t *testing.T) {
	srv := testTracedServer(t)
	rec, _ := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":1}`)
	id := rec.Header().Get("X-Trace-Id")

	// Plain scrape: 0.0.4 text format, no exemplar syntax, HELP present.
	rec, body := do(t, srv, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics=%d", rec.Code)
	}
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Errorf("plain scrape content type = %q", rec.Header().Get("Content-Type"))
	}
	text := string(body)
	if !strings.Contains(text, "# HELP") {
		t.Error("plain exposition carries no HELP lines")
	}
	if strings.Contains(text, "trace_id=") {
		t.Error("exemplar leaked into the plain 0.0.4 exposition")
	}

	// OpenMetrics scrape: exemplars link the latency histogram to the
	// stored trace.
	rec, body = doHdr(t, srv, "GET", "/metrics", "",
		map[string]string{"Accept": "application/openmetrics-text"})
	if rec.Code != http.StatusOK {
		t.Fatalf("openmetrics=%d", rec.Code)
	}
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/openmetrics-text") {
		t.Errorf("openmetrics content type = %q", rec.Header().Get("Content-Type"))
	}
	text = string(body)
	if !strings.HasSuffix(strings.TrimSpace(text), "# EOF") {
		t.Error("openmetrics exposition missing # EOF terminator")
	}
	want := `trace_id="` + id + `"`
	if !strings.Contains(text, want) {
		t.Fatalf("openmetrics exposition carries no exemplar for trace %s", id)
	}
	// And the exemplar resolves: the ID it names is fetchable.
	if rec, _ := do(t, srv, "GET", "/v1/debug/traces/"+id, ""); rec.Code != http.StatusOK {
		t.Errorf("exemplar trace %s not retrievable: %d", id, rec.Code)
	}
}
