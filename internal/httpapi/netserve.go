package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"

	"semdisco"
	"semdisco/internal/netcluster"
)

// NewCoordinator builds a Server fronting a networked-cluster coordinator:
// /v1/search and /v1/search/batch answer by wire-level scatter-gather over
// the replica sets (with the same degradation metadata cluster mode
// reports), /v1/relations writes route to the ring-owning set's replicas,
// /v1/stats reports router plus per-replica-set failover health, and the
// trace endpoints serve the coordinator's store — federated span trees with
// every winning replica's remote spans grafted in. Engine-only surfaces
// (datasets, index debug, recall probes) respond 501.
func NewCoordinator(nc *semdisco.NetCoordinator, opts ...Option) *Server {
	s := &Server{coord: nc, reg: nc.MetricsRegistry()}
	s.init(opts)
	return s
}

// writeBackendError maps a backend mutation/search error onto the unified
// error body. A *netcluster.WriteError (partial replica application) is an
// internal fault: the write is durable somewhere and the failed replicas
// need repair. A *netcluster.RemoteError passes the shard's own status
// through — a 404 from every replica of the owning set surfaces as this
// server's 404. Anything else gets the caller's fallback status.
func writeBackendError(w http.ResponseWriter, err error, fallback int) {
	var we *netcluster.WriteError
	if errors.As(err, &we) {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var re *netcluster.RemoteError
	if errors.As(err, &re) && re.Status >= 400 {
		writeError(w, re.Status, err.Error())
		return
	}
	writeError(w, fallback, err.Error())
}

// coordSearch answers /v1/search by networked scatter-gather. The request
// context rides down to every replica attempt as a wire deadline and
// traceparent; a whole replica set failing degrades the answer instead of
// failing it. The per-stage trace flag is not supported here — the full
// federated span tree (including shard-side spans) is retrievable at
// /v1/debug/traces/{trace_id} instead. Caller holds the read lock.
func (s *Server) coordSearch(w http.ResponseWriter, r *http.Request, req SearchRequest) {
	if len(req.Sources) > 0 {
		writeError(w, http.StatusNotImplemented, "source-filtered search not available in coordinator mode")
		return
	}
	res, err := s.coord.SearchContext(r.Context(), req.Query, req.K)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cost := res.Cost
	resp := SearchResponse{
		Matches:  matchesJSON(res.Matches),
		TraceID:  res.TraceID,
		Degraded: res.Degraded,
		CacheHit: res.CacheHit,
		Cost:     &cost,
	}
	for _, se := range res.ShardErrors {
		resp.ShardErrors = append(resp.ShardErrors, se.Error())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleUpdateRelation replaces a relation's contents in place (PUT
// /v1/relations/{id}): tombstone plus re-ingest under the same ID, moving
// the relation to the end of the global merge order. The body's ID may be
// omitted (the path wins) but must match the path when present.
func (s *Server) handleUpdateRelation(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var rel RelationJSON
	if err := json.NewDecoder(r.Body).Decode(&rel); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	if rel.ID == "" {
		rel.ID = id
	}
	if rel.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("body relation ID %q does not match path ID %q", rel.ID, id))
		return
	}
	annotate(r, slog.String("relation", id))
	sr := &semdisco.Relation{
		ID:           rel.ID,
		Source:       rel.Source,
		PageTitle:    rel.PageTitle,
		SectionTitle: rel.SectionTitle,
		Caption:      rel.Caption,
		Columns:      rel.Columns,
		Rows:         rel.Rows,
	}
	if err := sr.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	switch {
	case s.coord != nil:
		err = s.coord.Update(r.Context(), sr)
	case s.cluster != nil:
		err = s.cluster.Update(sr)
	default:
		err = s.eng.Update(sr)
	}
	if err != nil {
		writeBackendError(w, err, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "updated", "id": id})
}
