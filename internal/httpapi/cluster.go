package httpapi

import (
	"context"
	"net/http"

	"semdisco"
)

// requireEngine gates engine-only surfaces (datasets, debug endpoints):
// in cluster and coordinator modes they respond 501 rather than pretending
// a monolithic engine exists behind the router.
func (s *Server) requireEngine(w http.ResponseWriter) bool {
	if s.eng != nil {
		return true
	}
	mode := "cluster"
	if s.coord != nil {
		mode = "coordinator"
	}
	writeError(w, http.StatusNotImplemented, "endpoint not available in "+mode+" mode")
	return false
}

// add routes an ingest to whichever backend the server fronts. Caller
// holds the write lock.
func (s *Server) add(ctx context.Context, rel *semdisco.Relation) error {
	switch {
	case s.coord != nil:
		return s.coord.Add(ctx, rel)
	case s.cluster != nil:
		return s.cluster.Add(rel)
	}
	return s.eng.Add(rel)
}

// clusterSearch answers /v1/search by scatter-gather. The request context
// is threaded into every shard's scan loops, so a client hanging up stops
// shard work; degradation metadata rides along in the response instead of
// failing the query. Caller holds the read lock.
func (s *Server) clusterSearch(w http.ResponseWriter, r *http.Request, req SearchRequest) {
	if len(req.Sources) > 0 {
		writeError(w, http.StatusNotImplemented, "source-filtered search not available in cluster mode")
		return
	}
	var (
		res    *semdisco.ClusterResult
		stages []semdisco.TraceStage
		err    error
	)
	if req.Trace {
		res, stages, err = s.cluster.SearchTracedContext(r.Context(), req.Query, req.K)
	} else {
		res, err = s.cluster.SearchContext(r.Context(), req.Query, req.K)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cost := res.Cost
	resp := SearchResponse{
		Matches:  make([]MatchJSON, len(res.Matches)),
		TraceID:  res.TraceID,
		Degraded: res.Degraded,
		CacheHit: res.CacheHit,
		Cost:     &cost,
	}
	for i, m := range res.Matches {
		resp.Matches[i] = MatchJSON{RelationID: m.RelationID, Score: m.Score}
	}
	for _, se := range res.ShardErrors {
		resp.ShardErrors = append(resp.ShardErrors, se.Error())
	}
	if stages != nil {
		t := &TraceJSON{Stages: stages}
		for _, st := range stages {
			t.TotalMS += st.DurationMS
		}
		resp.Trace = t
	}
	writeJSON(w, http.StatusOK, resp)
}
