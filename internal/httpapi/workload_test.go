package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"semdisco"
)

// TestSearchResponseCarriesCost checks the default engine search path
// attaches a cost report with visible work.
func TestSearchResponseCarriesCost(t *testing.T) {
	srv := testServer(t)
	rec, body := do(t, srv, "POST", "/v1/search", `{"query":"COVID","k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("search=%d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost == nil {
		t.Fatalf("search response has no cost block: %s", body)
	}
	if resp.Cost.DistanceComps+resp.Cost.PQLookups == 0 {
		t.Fatalf("cost reports no comparison work: %+v", resp.Cost)
	}
}

// TestDebugWorkloadEngine checks the single-node workload endpoint: heavy
// hitters fold query case/whitespace, and the costliest board is populated.
func TestDebugWorkloadEngine(t *testing.T) {
	srv := testServer(t)
	burst(t, srv, "COVID", "covid", "quartz hardness")

	rec, body := do(t, srv, "GET", "/v1/debug/workload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/workload=%d %s", rec.Code, body)
	}
	var ws semdisco.WorkloadSnapshot
	if err := json.Unmarshal(body, &ws); err != nil {
		t.Fatal(err)
	}
	if ws.Queries != 3 {
		t.Fatalf("queries=%d, want 3", ws.Queries)
	}
	if len(ws.HeavyHitters) == 0 || ws.HeavyHitters[0].Query != "covid" || ws.HeavyHitters[0].Count != 2 {
		t.Fatalf("heavy hitters=%+v", ws.HeavyHitters)
	}
	if len(ws.Costliest) == 0 || ws.Costliest[0].Cost.Total() == 0 {
		t.Fatalf("costliest=%+v", ws.Costliest)
	}
}

// TestDebugSLOEngine checks the SLO endpoint reports both objectives after
// traffic, and 404s once the engine is disabled.
func TestDebugSLOEngine(t *testing.T) {
	srv := testServer(t)
	burst(t, srv, "COVID", "quartz hardness")

	rec, body := do(t, srv, "GET", "/v1/debug/slo", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/slo=%d %s", rec.Code, body)
	}
	var ss semdisco.SLOSnapshot
	if err := json.Unmarshal(body, &ss); err != nil {
		t.Fatal(err)
	}
	if len(ss.Objectives) != 2 {
		t.Fatalf("objectives=%+v", ss.Objectives)
	}
	for _, o := range ss.Objectives {
		if o.State != "ok" {
			t.Fatalf("objective %s state=%q", o.Objective, o.State)
		}
		if len(o.Windows) != 3 || o.Windows[0].Total != 2 {
			t.Fatalf("objective %s windows=%+v", o.Objective, o.Windows)
		}
	}

	srv.eng.ConfigureSLO(semdisco.SLOConfig{Disable: true})
	rec, _ = do(t, srv, "GET", "/v1/debug/slo", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled slo: code=%d", rec.Code)
	}
}

// TestDebugWorkloadCluster runs a skewed query mix against a 4-shard
// cluster and checks /v1/debug/workload reports heavy hitters and a valid
// load-skew gauge, and /v1/debug/slo covers the cluster search path.
func TestDebugWorkloadCluster(t *testing.T) {
	fed := semdisco.NewFederation()
	for i := 0; i < 12; i++ {
		r := &semdisco.Relation{
			ID:      fmt.Sprintf("rel-%d", i),
			Source:  "src",
			Columns: []string{"a", "b"},
			Rows:    [][]string{{fmt.Sprintf("val%d", i), "common"}},
		}
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := semdisco.NewCluster(fed, semdisco.ClusterConfig{
		Config:    semdisco.Config{Method: semdisco.ExS, Dim: 64, Seed: 1},
		Shards:    4,
		Policy:    semdisco.ShardRoundRobin,
		CacheSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCluster(cl)

	// Skewed mix: "common" dominates, plus a tail of distinct queries.
	burst(t, srv, "common", "common", "common", "val1", "val7")

	rec, body := do(t, srv, "GET", "/v1/debug/workload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/workload=%d %s", rec.Code, body)
	}
	var ws semdisco.WorkloadSnapshot
	if err := json.Unmarshal(body, &ws); err != nil {
		t.Fatal(err)
	}
	if ws.Queries != 5 {
		t.Fatalf("queries=%d, want 5", ws.Queries)
	}
	if len(ws.HeavyHitters) == 0 || ws.HeavyHitters[0].Query != "common" || ws.HeavyHitters[0].Count != 3 {
		t.Fatalf("heavy hitters=%+v", ws.HeavyHitters)
	}
	if len(ws.ShardLoad) != 4 {
		t.Fatalf("shard load=%v, want 4 shards", ws.ShardLoad)
	}
	var routed int64
	for _, v := range ws.ShardLoad {
		routed += v
	}
	if routed == 0 {
		t.Fatal("no sub-queries recorded against any shard")
	}
	if ws.LoadGini < 0 || ws.LoadGini >= 1 {
		t.Fatalf("load gini=%v out of range", ws.LoadGini)
	}
	if ws.LoadImbalance < 1 {
		t.Fatalf("load imbalance=%v, want ≥ 1", ws.LoadImbalance)
	}

	rec, body = do(t, srv, "GET", "/v1/debug/slo", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/slo=%d %s", rec.Code, body)
	}
	var ss semdisco.SLOSnapshot
	if err := json.Unmarshal(body, &ss); err != nil {
		t.Fatal(err)
	}
	if len(ss.Objectives) != 2 || ss.Objectives[0].State != "ok" {
		t.Fatalf("cluster slo=%+v", ss)
	}

	// The workload gauges made it onto the metrics surface.
	rec, body = do(t, srv, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics=%d", rec.Code)
	}
	for _, metric := range []string{"semdisco_workload_queries_total", "semdisco_workload_shard_load_gini", "semdisco_slo_burn_rate"} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("metrics output missing %s", metric)
		}
	}
}

// TestDebugJournalLimit checks the journal's ?n follows the shared
// limit-parameter convention: newest-n selection, 400 on garbage, and the
// unlimited default.
func TestDebugJournalLimit(t *testing.T) {
	srv := testServer(t)
	srv.eng.ConfigureDiagnostics(semdisco.DiagnosticsConfig{TraceSampleEvery: 1})
	burst(t, srv, "COVID", "quartz", "coronavirus vaccines")

	rec, body := do(t, srv, "GET", "/v1/debug/journal?n=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("journal?n=1 = %d %s", rec.Code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 {
		t.Fatalf("n=1 returned %d lines: %s", len(lines), body)
	}
	var ev struct {
		Query string `json:"query"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Query != "coronavirus vaccines" {
		t.Fatalf("n=1 returned %q, want the newest event", ev.Query)
	}

	// Explicit n=0 means no limit, same as the absent parameter.
	for _, path := range []string{"/v1/debug/journal", "/v1/debug/journal?n=0"} {
		_, body = do(t, srv, "GET", path, "")
		if got := len(strings.Split(strings.TrimSpace(string(body)), "\n")); got != 3 {
			t.Fatalf("%s returned %d lines, want 3", path, got)
		}
	}

	for _, q := range []string{"?n=abc", "?n=-1", "?n=2.5"} {
		rec, body := do(t, srv, "GET", "/v1/debug/journal"+q, "")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code=%d %s", q, rec.Code, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body=%s", q, body)
		}
	}
}
