// Package httpapi exposes a discovery Engine over HTTP with a small JSON
// API, so a federation member can host its (embedding-only, non-reversible)
// index as a service — the deployment shape the paper's federation setting
// implies.
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /metrics               Prometheus text exposition of engine + HTTP metrics
//	GET  /v1/stats              engine statistics (counters, latency quantiles, build phases)
//	POST /v1/search             {"query": "...", "k": 10, "sources": ["WHO"], "trace": true}
//	POST /v1/search/batch       {"queries": [{"query": "...", "k": 10}, ...]} — fused batched execution
//	POST /v1/datasets           {"query": "...", "k": 5}
//	POST /v1/relations          a Relation to index incrementally
//	DELETE /v1/relations/{id}   tombstone a relation (404 when unknown)
//	PUT  /v1/relations/{id}     replace a relation's contents in place
//	GET  /v1/debug/slow         slow-query log with per-stage traces (?n=20, max 100)
//	GET  /v1/debug/index        index health: HNSW graphs, PQ distortion, cluster balance
//	GET  /v1/debug/recall       online recall probe vs exhaustive scan (?k=10, max 50)
//	GET  /v1/debug/journal      slow/sampled query trace journal as JSON lines (?n limits)
//	GET  /v1/debug/traces       retained traces, newest first (?n=20, ?format=jsonl)
//	GET  /v1/debug/traces/{id}  one retained trace rendered as a span tree
//	GET  /v1/debug/workload     workload analytics: heavy hitters, shard load skew, costliest queries
//	GET  /v1/debug/slo          SLO burn rates per objective and window, with alert states
//	GET  /debug/pprof/          runtime profiles (only with WithPprof)
//
// Engine-mode servers additionally mount the internal encoded-search
// endpoints (POST /internal/v1/search/encoded and .../encoded/batch): a
// networked-cluster coordinator that already embedded the query posts the
// raw vector, so shards never re-encode. Coordinator-mode servers
// (NewCoordinator) answer the public API by wire-level scatter-gather over
// replica sets.
//
// Every request runs under a W3C trace context: an inbound traceparent
// header is continued, otherwise a trace ID is minted; the ID is stamped
// on the X-Trace-Id and Traceparent response headers and correlates the
// access log, the slow-query log and the stored span trees. An inbound
// X-Request-Id (defaulting to the trace ID) rides along the same way.
//
// Every non-2xx response carries an ErrorResponse JSON body, including
// wrong-method (405) and unknown-route (404) requests. When a logger is
// attached (WithLogger), each request is logged with method, path, status,
// duration, trace and request IDs and — for search requests — query
// length and k.
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"semdisco"
	"semdisco/internal/netcluster"
	"semdisco/internal/obs"
)

// Server wraps an Engine with HTTP handlers. Incremental adds are
// serialized with searches through an RWMutex because Engine.Add must not
// race with Engine.Search.
type Server struct {
	mu      sync.RWMutex
	probeMu sync.Mutex // at most one recall probe at a time
	eng     *semdisco.Engine
	// cluster is set instead of eng when the server fronts a sharded
	// federation (NewCluster). Engine-only surfaces (datasets, the debug
	// endpoints) respond 501 in cluster mode.
	cluster *semdisco.Cluster
	// coord is set instead when the server is a networked-cluster
	// coordinator (NewCoordinator): searches fan out over the wire to
	// replica sets, writes route to the ring-owning set's replicas.
	coord *semdisco.NetCoordinator
	mux   *http.ServeMux
	log     *slog.Logger  // nil: request logging off
	reg     *obs.Registry // engine registry; nil when metrics are disabled
	start   time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithLogger enables structured request logging through l.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithPprof mounts net/http/pprof under /debug/pprof/, so a live server
// can be CPU- and heap-profiled with `go tool pprof`.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// New builds a Server around an engine. Alongside the public API the
// server mounts the internal encoded-search endpoints (see
// semdisco/internal/netcluster): a coordinator that has already embedded a
// query POSTs the raw vector here, so the shard never re-encodes. They are
// what make an ordinary engine server usable as one shard of a networked
// cluster.
func New(eng *semdisco.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, reg: eng.MetricsRegistry()}
	s.init(opts)
	sh := netcluster.NewShardHandler(eng.EncodedBackend(), eng.Traces(), eng.Dim())
	s.mux.Handle(netcluster.PathEncodedSearch, sh)
	s.mux.Handle(netcluster.PathEncodedSearchBatch, sh)
	return s
}

// NewCluster builds a Server around a sharded cluster: /v1/search answers
// by scatter-gather (with degradation metadata in the response), /v1/stats
// reports per-shard health, /v1/relations routes adds to shards.
func NewCluster(cl *semdisco.Cluster, opts ...Option) *Server {
	s := &Server{cluster: cl, reg: cl.MetricsRegistry()}
	s.init(opts)
	return s
}

func (s *Server) init(opts []Option) {
	s.mux = http.NewServeMux()
	s.start = time.Now()
	route := func(method, path string, h http.HandlerFunc) {
		s.mux.HandleFunc(method+" "+path, h)
		// The method-less fallback catches wrong-method requests, which
		// would otherwise get the mux's plain-text 405.
		s.mux.HandleFunc(path, s.methodNotAllowed(method))
	}
	route("GET", "/healthz", s.handleHealth)
	route("GET", "/metrics", s.handleMetrics)
	route("GET", "/v1/stats", s.handleStats)
	route("POST", "/v1/search", s.handleSearch)
	route("POST", "/v1/search/batch", s.handleSearchBatch)
	route("POST", "/v1/datasets", s.handleDatasets)
	route("POST", "/v1/relations", s.handleAddRelation)
	s.mux.HandleFunc("DELETE /v1/relations/{id}", s.handleDeleteRelation)
	s.mux.HandleFunc("PUT /v1/relations/{id}", s.handleUpdateRelation)
	s.mux.HandleFunc("/v1/relations/{id}", s.methodNotAllowed("DELETE, PUT"))
	route("GET", "/v1/debug/slow", s.handleDebugSlow)
	route("GET", "/v1/debug/index", s.handleDebugIndex)
	route("GET", "/v1/debug/recall", s.handleDebugRecall)
	route("GET", "/v1/debug/journal", s.handleDebugJournal)
	route("GET", "/v1/debug/traces", s.handleDebugTraces)
	route("GET", "/v1/debug/traces/{id}", s.handleDebugTrace)
	route("GET", "/v1/debug/workload", s.handleDebugWorkload)
	route("GET", "/v1/debug/slo", s.handleDebugSLO)
	s.mux.HandleFunc("/", s.handleNotFound)
	for _, opt := range opts {
		opt(s)
	}
}

// logAttrs is the per-request annotation bag handlers append to (query
// length, k) so the access log line carries request-specific detail.
type logAttrs struct {
	mu    sync.Mutex
	attrs []slog.Attr
}

type logAttrsKey struct{}

// annotate attaches request detail to the access log line.
func annotate(r *http.Request, attrs ...slog.Attr) {
	bag, ok := r.Context().Value(logAttrsKey{}).(*logAttrs)
	if !ok {
		return
	}
	bag.mu.Lock()
	bag.attrs = append(bag.attrs, attrs...)
	bag.mu.Unlock()
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: trace propagation + metrics + logging
// middleware around the mux. Every request runs under a W3C trace context —
// the inbound traceparent header's when one parses, a freshly minted one
// otherwise — and under a correlation ID (inbound X-Request-Id, defaulting
// to the trace ID). Both are stamped on the response headers (X-Trace-Id,
// Traceparent, X-Request-Id), threaded through the request context into
// the engine's trace store and slow-query log, and attached to the access
// log line, so one grep joins the log, the slow log, the journal and the
// stored span tree.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	bag := &logAttrs{}
	ctx := context.WithValue(r.Context(), logAttrsKey{}, bag)

	sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		// No (or malformed) inbound context: this request starts the trace,
		// with the server itself as the root span's remote parent.
		sc = obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}
	}
	requestID := r.Header.Get("X-Request-Id")
	if requestID == "" {
		requestID = sc.TraceID.String()
	}
	ctx = obs.ContextWithSpan(ctx, sc)
	ctx = obs.ContextWithRequestID(ctx, requestID)
	r = r.WithContext(ctx)

	hdr := sw.Header()
	hdr.Set("X-Trace-Id", sc.TraceID.String())
	hdr.Set("Traceparent", sc.Traceparent())
	hdr.Set("X-Request-Id", requestID)

	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start)
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	s.reg.Counter(obs.L("semdisco_http_requests_total",
		"path", pattern, "code", strconv.Itoa(sw.status))).Inc()
	s.reg.Histogram(obs.L("semdisco_http_request_seconds", "path", pattern)).Observe(elapsed)

	if s.log != nil {
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("request_id", requestID),
		}
		bag.mu.Lock()
		attrs = append(attrs, bag.attrs...)
		bag.mu.Unlock()
		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		s.log.LogAttrs(r.Context(), level, "request", attrs...)
	}
}

// SearchRequest is the body of /v1/search and /v1/datasets.
type SearchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k"`
	// Sources optionally restricts the search to federation members.
	Sources []string `json:"sources,omitempty"`
	// Trace asks for the per-stage breakdown of this query in the
	// response. Ignored when Sources is set (filtered searches are not
	// traced).
	Trace bool `json:"trace,omitempty"`
}

// TraceJSON is the per-request stage breakdown returned when the search
// request set "trace": true.
type TraceJSON struct {
	TotalMS float64               `json:"total_ms"`
	Stages  []semdisco.TraceStage `json:"stages"`
}

// SearchResponse is the body returned by /v1/search. The cluster-mode
// fields report federated-query health: a degraded answer covers only the
// healthy shards' partitions.
type SearchResponse struct {
	Matches []MatchJSON `json:"matches"`
	// TraceID is the hex trace ID the query ran under (also on the
	// X-Trace-Id response header). When the outcome was interesting — slow,
	// degraded, hedged, errored, or head-sampled — the full span tree is
	// retrievable at /v1/debug/traces/{trace_id}.
	TraceID string     `json:"trace_id,omitempty"`
	Trace   *TraceJSON `json:"trace,omitempty"`
	// Degraded is set in cluster mode when one or more shards failed or
	// timed out; ShardErrors names them.
	Degraded    bool     `json:"degraded,omitempty"`
	ShardErrors []string `json:"shard_errors,omitempty"`
	// CacheHit reports the answer came from the cluster's query cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Cost is the query's work accounting: distance computations, graph
	// hops, PQ table lookups, values/bytes scanned, candidate counts. In
	// cluster mode it is the sum across every shard attempt.
	Cost *semdisco.CostReport `json:"cost,omitempty"`
}

// MatchJSON is one relation match.
type MatchJSON struct {
	RelationID string  `json:"relation_id"`
	Score      float32 `json:"score"`
}

// DatasetJSON is one dataset match.
type DatasetJSON struct {
	Source    string      `json:"source"`
	Score     float32     `json:"score"`
	Relations []MatchJSON `json:"relations"`
}

// DatasetsResponse is the body returned by /v1/datasets.
type DatasetsResponse struct {
	Datasets []DatasetJSON `json:"datasets"`
}

// StatsResponse is the body returned by /v1/stats: the engine's full
// observability snapshot plus server uptime. In cluster mode Cluster
// carries per-shard health (relation counts, searches, errors, timeouts,
// hedges, latency quantiles) and the query-cache counters.
type StatsResponse struct {
	semdisco.EngineStats
	Cluster *semdisco.ClusterStats `json:"cluster,omitempty"`
	// Netcluster carries coordinator-mode health: the federated router view
	// plus each replica set's failover counters and ring share.
	Netcluster    *netcluster.CoordinatorStats `json:"netcluster,omitempty"`
	UptimeSeconds float64                      `json:"uptime_seconds"`
}

// ErrorResponse is the unified error shape every non-2xx response on this
// server carries: {"error": <human detail>, "code": <machine class>}. The
// code is derived from the status (bad_request, not_found,
// method_not_allowed, too_many_requests, not_implemented, internal,
// unavailable) and matches the internal wire protocol's error bodies, so a
// coordinator classifies local and remote failures identically.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// codeForStatus maps an HTTP status to the unified machine-readable error
// code (netcluster.Code*).
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return netcluster.CodeBadRequest
	case http.StatusNotFound:
		return netcluster.CodeNotFound
	case http.StatusMethodNotAllowed:
		return netcluster.CodeMethodNotAllowed
	case http.StatusTooManyRequests:
		return netcluster.CodeTooManyRequests
	case http.StatusNotImplemented:
		return netcluster.CodeNotImplemented
	case http.StatusServiceUnavailable:
		return netcluster.CodeUnavailable
	default:
		if status >= 500 {
			return netcluster.CodeInternal
		}
		return netcluster.CodeBadRequest
	}
}

// writeError writes the unified error body for a non-2xx status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: codeForStatus(status)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the Prometheus text exposition. Scrapers accepting
// OpenMetrics get that format instead, with histogram bucket exemplars
// linking latency spikes to stored trace IDs — exemplar syntax is not
// valid in the plain 0.0.4 format, so it only appears when negotiated.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := StatsResponse{UptimeSeconds: time.Since(s.start).Seconds()}
	switch {
	case s.cluster != nil:
		cs := s.cluster.Stats()
		resp.Cluster = &cs
		resp.Method = s.cluster.Method().String()
		resp.NumRelations = s.cluster.NumRelations()
	case s.coord != nil:
		ns := s.coord.Stats()
		resp.Netcluster = &ns
		resp.Method = s.coord.Method().String()
		resp.NumRelations = s.coord.NumRelations()
	default:
		resp.EngineStats = s.eng.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSearch(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cluster != nil {
		s.clusterSearch(w, r, req)
		return
	}
	if s.coord != nil {
		s.coordSearch(w, r, req)
		return
	}
	var (
		matches []semdisco.Match
		stages  []semdisco.TraceStage
		cost    *semdisco.CostReport
		err     error
	)
	switch {
	case len(req.Sources) > 0:
		matches, err = s.eng.SearchSources(req.Query, req.K, req.Sources...)
	case req.Trace:
		matches, stages, err = s.eng.SearchTracedContext(r.Context(), req.Query, req.K)
	default:
		var rep semdisco.CostReport
		matches, rep, err = s.eng.SearchCost(r.Context(), req.Query, req.K)
		cost = &rep
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := SearchResponse{Matches: make([]MatchJSON, len(matches)), Cost: cost}
	if sc, ok := obs.SpanContextFrom(r.Context()); ok && len(req.Sources) == 0 {
		// Engine searches continue the middleware's span context, so its
		// trace ID is the one the stored trace carries. Source-filtered
		// searches are not traced.
		resp.TraceID = sc.TraceID.String()
	}
	for i, m := range matches {
		resp.Matches[i] = MatchJSON{RelationID: m.RelationID, Score: m.Score}
	}
	if stages != nil {
		t := &TraceJSON{Stages: stages}
		for _, st := range stages {
			t.TotalMS += st.DurationMS
		}
		resp.Trace = t
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSearch(w, r)
	if !ok {
		return
	}
	if !s.requireEngine(w) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	datasets, err := s.eng.SearchDatasets(req.Query, req.K)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := DatasetsResponse{Datasets: make([]DatasetJSON, len(datasets))}
	for i, d := range datasets {
		dj := DatasetJSON{Source: d.Source, Score: d.Score}
		for _, m := range d.Relations {
			dj.Relations = append(dj.Relations, MatchJSON{RelationID: m.RelationID, Score: m.Score})
		}
		resp.Datasets[i] = dj
	}
	writeJSON(w, http.StatusOK, resp)
}

// RelationJSON mirrors semdisco.Relation for the ingest endpoint.
type RelationJSON struct {
	ID           string     `json:"id"`
	Source       string     `json:"source"`
	PageTitle    string     `json:"page_title,omitempty"`
	SectionTitle string     `json:"section_title,omitempty"`
	Caption      string     `json:"caption,omitempty"`
	Columns      []string   `json:"columns"`
	Rows         [][]string `json:"rows"`
}

func (s *Server) handleAddRelation(w http.ResponseWriter, r *http.Request) {
	var rel RelationJSON
	if err := json.NewDecoder(r.Body).Decode(&rel); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	annotate(r, slog.String("relation", rel.ID))
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.add(r.Context(), &semdisco.Relation{
		ID:           rel.ID,
		Source:       rel.Source,
		PageTitle:    rel.PageTitle,
		SectionTitle: rel.SectionTitle,
		Caption:      rel.Caption,
		Columns:      rel.Columns,
		Rows:         rel.Rows,
	})
	if err != nil {
		writeBackendError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "indexed", "id": rel.ID})
}

// handleDeleteRelation tombstones one relation by ID. The slot's vectors
// stay in place until background compaction reclaims them, but the
// relation stops appearing in results immediately. Unknown IDs get 404.
func (s *Server) handleDeleteRelation(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	annotate(r, slog.String("relation", id))
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	switch {
	case s.coord != nil:
		err = s.coord.Delete(r.Context(), id)
	case s.cluster != nil:
		err = s.cluster.Delete(id)
	default:
		err = s.eng.Delete(id)
	}
	if err != nil {
		writeBackendError(w, err, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted", "id": id})
}

func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed; use %s", r.Method, allow))
	}
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, fmt.Sprintf("no such route %s", r.URL.Path))
}

func decodeSearch(w http.ResponseWriter, r *http.Request) (SearchRequest, bool) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return req, false
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "query is required")
		return req, false
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 1000 {
		req.K = 1000
	}
	annotate(r, slog.Int("query_len", len(req.Query)), slog.Int("k", req.K))
	return req, true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
