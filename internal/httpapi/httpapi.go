// Package httpapi exposes a discovery Engine over HTTP with a small JSON
// API, so a federation member can host its (embedding-only, non-reversible)
// index as a service — the deployment shape the paper's federation setting
// implies.
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /v1/stats              engine statistics
//	POST /v1/search             {"query": "...", "k": 10, "sources": ["WHO"]}
//	POST /v1/datasets           {"query": "...", "k": 5}
//	POST /v1/relations          a Relation to index incrementally
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"semdisco"
)

// Server wraps an Engine with HTTP handlers. Incremental adds are
// serialized with searches through an RWMutex because Engine.Add must not
// race with Engine.Search.
type Server struct {
	mu  sync.RWMutex
	eng *semdisco.Engine
	mux *http.ServeMux
}

// New builds a Server around an engine.
func New(eng *semdisco.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /v1/relations", s.handleAddRelation)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SearchRequest is the body of /v1/search and /v1/datasets.
type SearchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k"`
	// Sources optionally restricts the search to federation members.
	Sources []string `json:"sources,omitempty"`
}

// SearchResponse is the body returned by /v1/search.
type SearchResponse struct {
	Matches []MatchJSON `json:"matches"`
}

// MatchJSON is one relation match.
type MatchJSON struct {
	RelationID string  `json:"relation_id"`
	Score      float32 `json:"score"`
}

// DatasetJSON is one dataset match.
type DatasetJSON struct {
	Source    string      `json:"source"`
	Score     float32     `json:"score"`
	Relations []MatchJSON `json:"relations"`
}

// DatasetsResponse is the body returned by /v1/datasets.
type DatasetsResponse struct {
	Datasets []DatasetJSON `json:"datasets"`
}

// StatsResponse is the body returned by /v1/stats.
type StatsResponse struct {
	Method    string `json:"method"`
	NumValues int    `json:"num_values"`
}

// ErrorResponse is returned with every non-2xx status.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, StatsResponse{
		Method:    s.eng.Method().String(),
		NumValues: s.eng.NumValues(),
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSearch(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var (
		matches []semdisco.Match
		err     error
	)
	if len(req.Sources) > 0 {
		matches, err = s.eng.SearchSources(req.Query, req.K, req.Sources...)
	} else {
		matches, err = s.eng.Search(req.Query, req.K)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{err.Error()})
		return
	}
	resp := SearchResponse{Matches: make([]MatchJSON, len(matches))}
	for i, m := range matches {
		resp.Matches[i] = MatchJSON{RelationID: m.RelationID, Score: m.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSearch(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	datasets, err := s.eng.SearchDatasets(req.Query, req.K)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{err.Error()})
		return
	}
	resp := DatasetsResponse{Datasets: make([]DatasetJSON, len(datasets))}
	for i, d := range datasets {
		dj := DatasetJSON{Source: d.Source, Score: d.Score}
		for _, m := range d.Relations {
			dj.Relations = append(dj.Relations, MatchJSON{RelationID: m.RelationID, Score: m.Score})
		}
		resp.Datasets[i] = dj
	}
	writeJSON(w, http.StatusOK, resp)
}

// RelationJSON mirrors semdisco.Relation for the ingest endpoint.
type RelationJSON struct {
	ID           string     `json:"id"`
	Source       string     `json:"source"`
	PageTitle    string     `json:"page_title,omitempty"`
	SectionTitle string     `json:"section_title,omitempty"`
	Caption      string     `json:"caption,omitempty"`
	Columns      []string   `json:"columns"`
	Rows         [][]string `json:"rows"`
}

func (s *Server) handleAddRelation(w http.ResponseWriter, r *http.Request) {
	var rel RelationJSON
	if err := json.NewDecoder(r.Body).Decode(&rel); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{fmt.Sprintf("bad body: %v", err)})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.eng.Add(&semdisco.Relation{
		ID:           rel.ID,
		Source:       rel.Source,
		PageTitle:    rel.PageTitle,
		SectionTitle: rel.SectionTitle,
		Caption:      rel.Caption,
		Columns:      rel.Columns,
		Rows:         rel.Rows,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "indexed", "id": rel.ID})
}

func decodeSearch(w http.ResponseWriter, r *http.Request) (SearchRequest, bool) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{fmt.Sprintf("bad body: %v", err)})
		return req, false
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{"query is required"})
		return req, false
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 1000 {
		req.K = 1000
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
