package httpapi

import (
	"net/http"

	"semdisco/internal/obs"
)

// workload returns whichever backend's workload analyzer the server
// fronts: heavy-hitter queries, per-shard load counters and the
// costliest-queries board.
func (s *Server) workload() *obs.Workload {
	switch {
	case s.coord != nil:
		// The coordinator does not run workload analytics; the handler
		// answers 404 honestly.
		return nil
	case s.cluster != nil:
		return s.cluster.Workload()
	}
	return s.eng.Workload()
}

// slo returns whichever backend's SLO burn-rate engine the server fronts;
// nil when Config.SLO.Disable was set.
func (s *Server) slo() *obs.SLOEngine {
	switch {
	case s.coord != nil:
		return s.coord.SLO()
	case s.cluster != nil:
		return s.cluster.SLO()
	}
	return s.eng.SLO()
}

// handleDebugWorkload serves the workload analyzer's snapshot: total
// queries, the heavy-hitter sketch (normalized query keys with counts and
// error bounds), per-shard load with the Gini skew coefficient, and the
// costliest queries ranked by distance computations.
func (s *Server) handleDebugWorkload(w http.ResponseWriter, _ *http.Request) {
	wl := s.workload()
	if wl == nil {
		writeError(w, http.StatusNotFound, "workload analytics are disabled on this server")
		return
	}
	writeJSON(w, http.StatusOK, wl.Snapshot())
}

// handleDebugSLO serves the SLO engine's snapshot: per-objective
// (availability, latency) multi-window burn rates and the derived alert
// state (ok, slow_burn, fast_burn).
func (s *Server) handleDebugSLO(w http.ResponseWriter, _ *http.Request) {
	e := s.slo()
	if e == nil {
		writeError(w, http.StatusNotFound, "the SLO engine is disabled on this server")
		return
	}
	writeJSON(w, http.StatusOK, e.Snapshot())
}
