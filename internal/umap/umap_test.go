package umap

import (
	"math"
	"math/rand"
	"testing"

	"semdisco/internal/vec"
)

// clusters generates c well-separated Gaussian clusters of m points in dim
// dimensions and returns the points plus their true cluster labels.
func clusters(c, m, dim int, seed int64) ([][]float32, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, c)
	for i := range centers {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64()) * 10
		}
		centers[i] = v
	}
	var pts [][]float32
	var labels []int
	for i, ctr := range centers {
		for j := 0; j < m; j++ {
			p := vec.Clone(ctr)
			for d := range p {
				p[d] += float32(rng.NormFloat64()) * 0.3
			}
			pts = append(pts, p)
			labels = append(labels, i)
		}
	}
	return pts, labels
}

// neighborPurity measures, for each point, the fraction of its 5 nearest
// embedded neighbours that share its true label.
func neighborPurity(emb [][]float32, labels []int) float64 {
	good, total := 0, 0
	for i := range emb {
		type nd struct {
			j int
			d float32
		}
		var nds []nd
		for j := range emb {
			if i == j {
				continue
			}
			nds = append(nds, nd{j, vec.L2Sq(emb[i], emb[j])})
		}
		for t := 0; t < 5; t++ {
			best := t
			for u := t + 1; u < len(nds); u++ {
				if nds[u].d < nds[best].d {
					best = u
				}
			}
			nds[t], nds[best] = nds[best], nds[t]
			if labels[nds[t].j] == labels[i] {
				good++
			}
			total++
		}
	}
	return float64(good) / float64(total)
}

func TestFitPreservesClusterStructure(t *testing.T) {
	pts, labels := clusters(4, 40, 32, 1)
	emb := Fit(pts, Config{NComponents: 4, NNeighbors: 10, NEpochs: 100, Seed: 1})
	if len(emb) != len(pts) || len(emb[0]) != 4 {
		t.Fatalf("shape %dx%d", len(emb), len(emb[0]))
	}
	purity := neighborPurity(emb, labels)
	if purity < 0.9 {
		t.Fatalf("neighbor purity %.3f < 0.9", purity)
	}
}

func TestFitDeterministic(t *testing.T) {
	pts, _ := clusters(3, 20, 16, 2)
	a := Fit(pts, Config{NComponents: 2, NEpochs: 50, Seed: 7})
	b := Fit(pts, Config{NComponents: 2, NEpochs: 50, Seed: 7})
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("same seed, different embedding")
			}
		}
	}
}

func TestFitFiniteOutput(t *testing.T) {
	pts, _ := clusters(3, 30, 16, 3)
	emb := Fit(pts, Config{NComponents: 3, NEpochs: 80, Seed: 3})
	for i := range emb {
		for _, x := range emb[i] {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatalf("non-finite embedding at %d: %v", i, emb[i])
			}
		}
	}
}

func TestFitTinyInputs(t *testing.T) {
	if got := Fit(nil, Config{}); got != nil {
		t.Fatal("nil input")
	}
	got := Fit([][]float32{{1, 2, 3}}, Config{NComponents: 2})
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("single point shape: %v", got)
	}
	two := Fit([][]float32{{1, 2, 3}, {4, 5, 6}}, Config{NComponents: 2, NEpochs: 10, Seed: 1})
	if len(two) != 2 {
		t.Fatalf("two points: %v", two)
	}
}

func TestFitDuplicatePoints(t *testing.T) {
	pts := make([][]float32, 30)
	for i := range pts {
		pts[i] = []float32{1, 2, 3, 4}
	}
	emb := Fit(pts, Config{NComponents: 2, NEpochs: 20, Seed: 4})
	for i := range emb {
		for _, x := range emb[i] {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatal("duplicates produced non-finite output")
			}
		}
	}
}

func TestApproxKNNPathAgreesOnStructure(t *testing.T) {
	pts, labels := clusters(3, 60, 16, 5)
	// Force the HNSW path by setting the threshold below n.
	emb := Fit(pts, Config{NComponents: 4, NEpochs: 80, Seed: 5, ExactKNNThreshold: 10})
	purity := neighborPurity(emb, labels)
	if purity < 0.85 {
		t.Fatalf("approx-kNN purity %.3f < 0.85", purity)
	}
}

func TestFitABDefaults(t *testing.T) {
	a, b := fitAB(1.0, 0.1)
	// Reference values for spread=1.0, min_dist=0.1 are a≈1.577, b≈0.895.
	if math.Abs(a-1.577) > 0.25 || math.Abs(b-0.895) > 0.15 {
		t.Fatalf("fitAB(1.0, 0.1) = %.3f, %.3f; want ≈ 1.577, 0.895", a, b)
	}
}

func TestSmoothKNNDistTargets(t *testing.T) {
	ds := []float32{0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9}
	rho := ds[0]
	sigma := smoothKNNDist(ds, rho)
	var sum float64
	for _, d := range ds {
		x := float64(d - rho)
		if x < 0 {
			x = 0
		}
		sum += math.Exp(-x / sigma)
	}
	if math.Abs(sum-math.Log2(8)) > 1e-3 {
		t.Fatalf("calibrated sum %.4f want %.4f", sum, math.Log2(8))
	}
}

func TestPCARecoverVariance(t *testing.T) {
	// Points on a noisy 2D plane inside 10D space: the top-2 PCA projection
	// must retain the separation between two groups.
	rng := rand.New(rand.NewSource(6))
	var pts [][]float32
	var labels []int
	for g := 0; g < 2; g++ {
		for i := 0; i < 50; i++ {
			p := make([]float32, 10)
			p[0] = float32(g*20) + float32(rng.NormFloat64())
			p[1] = float32(rng.NormFloat64()) * 5
			for d := 2; d < 10; d++ {
				p[d] = float32(rng.NormFloat64()) * 0.01
			}
			pts = append(pts, p)
			labels = append(labels, g)
		}
	}
	emb := PCA(pts, 2, 6)
	purity := neighborPurity(emb, labels)
	if purity < 0.95 {
		t.Fatalf("PCA purity %.3f", purity)
	}
}

func TestPCAShapeAndEdgeCases(t *testing.T) {
	if got := PCA(nil, 2, 1); got != nil {
		t.Fatal("nil input")
	}
	got := PCA([][]float32{{1, 2}}, 5, 1)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("k clamped to dim: %v", got)
	}
	// Constant data: must not NaN.
	pts := [][]float32{{3, 3}, {3, 3}, {3, 3}}
	for _, row := range PCA(pts, 2, 1) {
		for _, x := range row {
			if math.IsNaN(float64(x)) {
				t.Fatal("constant data produced NaN")
			}
		}
	}
}

func TestPCADeterministic(t *testing.T) {
	pts, _ := clusters(2, 30, 8, 7)
	a := PCA(pts, 3, 9)
	b := PCA(pts, 3, 9)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("PCA not deterministic")
			}
		}
	}
}

func BenchmarkFit500(b *testing.B) {
	pts, _ := clusters(5, 100, 64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Fit(pts, Config{NComponents: 8, NEpochs: 50, Seed: 8})
	}
}

func TestTransformPlacesNewPointsNearTheirCluster(t *testing.T) {
	pts, labels := clusters(3, 40, 16, 20)
	model := FitModel(pts, Config{NComponents: 4, NEpochs: 100, Seed: 20})
	if model.Len() != len(pts) {
		t.Fatalf("Len=%d", model.Len())
	}
	// Perturbed copies of training points must land nearest their source's
	// cluster region.
	rng := rand.New(rand.NewSource(21))
	correct := 0
	const probes = 30
	for trial := 0; trial < probes; trial++ {
		src := rng.Intn(len(pts))
		p := vec.Clone(pts[src])
		for d := range p {
			p[d] += float32(rng.NormFloat64()) * 0.1
		}
		emb := model.Transform(p)
		// Nearest training embedding determines the predicted cluster.
		best, bestD := 0, float32(math.MaxFloat32)
		for i, o := range model.Coordinates() {
			if d := vec.L2Sq(emb, o); d < bestD {
				best, bestD = i, d
			}
		}
		if labels[best] == labels[src] {
			correct++
		}
	}
	if correct < probes*9/10 {
		t.Fatalf("transform placed only %d/%d probes in the right cluster", correct, probes)
	}
}

func TestTransformFiniteAndDeterministic(t *testing.T) {
	pts, _ := clusters(2, 20, 8, 22)
	model := FitModel(pts, Config{NComponents: 2, NEpochs: 40, Seed: 22})
	p := []float32{0, 0, 0, 0, 0, 0, 0, 0}
	a := model.Transform(p)
	b := model.Transform(p)
	for d := range a {
		if a[d] != b[d] {
			t.Fatal("Transform not deterministic")
		}
		if math.IsNaN(float64(a[d])) || math.IsInf(float64(a[d]), 0) {
			t.Fatal("Transform produced non-finite output")
		}
	}
	batch := model.TransformAll([][]float32{p, pts[0]})
	if len(batch) != 2 || len(batch[0]) != 2 {
		t.Fatalf("TransformAll shape: %v", batch)
	}
}

func TestTransformExactTrainingPoint(t *testing.T) {
	// A training point itself transforms very near its own embedding.
	pts, _ := clusters(2, 25, 8, 23)
	model := FitModel(pts, Config{NComponents: 3, NEpochs: 60, Seed: 23})
	emb := model.Transform(pts[5])
	own := model.Coordinates()[5]
	// Its own embedding dominates the weighted mean (distance ≈ 0).
	if vec.L2(emb, own) > vec.Norm(own)*0.5+1 {
		t.Fatalf("self transform too far: %v vs %v", emb, own)
	}
}

// TestParallelFitPreservesClusterStructure exercises the Hogwild SGD and
// sharded kNN path: the parallel embedding is not bit-reproducible, but it
// must keep the same cluster structure the serial path does. Run under
// -race this doubles as the data-race check for the CAS embedding buffer.
func TestParallelFitPreservesClusterStructure(t *testing.T) {
	pts, labels := clusters(4, 40, 32, 1)
	emb := Fit(pts, Config{NComponents: 4, NNeighbors: 10, NEpochs: 100, Seed: 1, Workers: 4})
	if len(emb) != len(pts) || len(emb[0]) != 4 {
		t.Fatalf("shape %dx%d", len(emb), len(emb[0]))
	}
	for i := range emb {
		for _, x := range emb[i] {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatalf("non-finite coordinate at %d", i)
			}
		}
	}
	purity := neighborPurity(emb, labels)
	if purity < 0.9 {
		t.Fatalf("parallel neighbor purity %.3f < 0.9", purity)
	}
}

// TestParallelApproxKNNPath drives Workers > 1 through the HNSW-approximate
// kNN branch (threshold forced below n).
func TestParallelApproxKNNPath(t *testing.T) {
	pts, labels := clusters(3, 50, 24, 6)
	emb := Fit(pts, Config{
		NComponents: 4, NNeighbors: 10, NEpochs: 80, Seed: 6,
		ExactKNNThreshold: 10, Workers: 4,
	})
	purity := neighborPurity(emb, labels)
	if purity < 0.85 {
		t.Fatalf("parallel approx-kNN purity %.3f < 0.85", purity)
	}
}
