package umap

import (
	"math"
	"math/rand"

	"semdisco/internal/vec"
)

// PCA reduces points to k dimensions by projecting onto the top-k principal
// components, found by power iteration with deflation on the covariance
// matrix. When the input exceeds sampleCap rows, the covariance is
// estimated on a deterministic stride subsample — the projection itself
// still covers every row. PCA is the comparison reducer in the CTS ablation
// (the paper chose UMAP over alternatives such as t-SNE).
func PCA(points [][]float32, k int, seed int64) [][]float32 {
	n := len(points)
	if n == 0 {
		return nil
	}
	dim := len(points[0])
	if k > dim {
		k = dim
	}
	if k <= 0 {
		k = 2
	}

	const sampleCap = 1024
	sample := points
	if n > sampleCap {
		stride := n / sampleCap
		sub := make([][]float32, 0, sampleCap)
		for i := 0; i < n && len(sub) < sampleCap; i += stride {
			sub = append(sub, points[i])
		}
		sample = sub
	}

	mean := vec.Mean(sample)
	// Covariance (upper triangle, symmetrized on read).
	cov := make([]float64, dim*dim)
	centered := make([]float32, dim)
	for _, p := range sample {
		vec.Sub(centered, p, mean)
		for i := 0; i < dim; i++ {
			ci := float64(centered[i])
			row := cov[i*dim:]
			for j := i; j < dim; j++ {
				row[j] += ci * float64(centered[j])
			}
		}
	}
	inv := 1 / float64(len(sample))
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i*dim+j] *= inv
			cov[j*dim+i] = cov[i*dim+j]
		}
	}

	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	components := make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		v := powerIteration(cov, dim, components, rng)
		components = append(components, v)
	}

	out := make([][]float32, n)
	for i, p := range points {
		e := make([]float32, k)
		for c, comp := range components {
			var s float64
			for d := 0; d < dim; d++ {
				s += float64(p[d]-mean[d]) * comp[d]
			}
			e[c] = float32(s)
		}
		out[i] = e
	}
	return out
}

// powerIteration finds the dominant eigenvector of cov orthogonal to prev.
func powerIteration(cov []float64, dim int, prev [][]float64, rng *rand.Rand) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tmp := make([]float64, dim)
	for iter := 0; iter < 100; iter++ {
		orthogonalize(v, prev)
		// tmp = cov · v
		for i := 0; i < dim; i++ {
			var s float64
			row := cov[i*dim:]
			for j := 0; j < dim; j++ {
				s += row[j] * v[j]
			}
			tmp[i] = s
		}
		norm := 0.0
		for _, x := range tmp {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate direction (rank-deficient data): return any unit
			// vector orthogonal to previous components.
			orthogonalize(v, prev)
			normalize64(v)
			return v
		}
		var diff float64
		for i := range v {
			nv := tmp[i] / norm
			diff += math.Abs(nv - v[i])
			v[i] = nv
		}
		if diff < 1e-9 {
			break
		}
	}
	orthogonalize(v, prev)
	normalize64(v)
	return v
}

func orthogonalize(v []float64, prev [][]float64) {
	for _, p := range prev {
		var dot float64
		for i := range v {
			dot += v[i] * p[i]
		}
		for i := range v {
			v[i] -= dot * p[i]
		}
	}
}

func normalize64(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}
