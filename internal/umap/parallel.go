package umap

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"semdisco/internal/par"
)

// optimizeParallel is the Workers >= 2 variant of optimize: Hogwild-style
// asynchronous SGD (Recht et al. 2011) over shards of the fuzzy-graph edge
// list. The embedding lives in a flat buffer of float32 bit patterns that
// workers update with compare-and-swap adds, so the run is free of data
// races (and clean under -race) while staying lock-free on the hot path.
// Updates from different shards interleave nondeterministically — the usual
// Hogwild trade: the loss landscape is robust to stale reads because each
// edge touches only a handful of coordinates.
//
// Edge bookkeeping (nextEpoch) is sharded with the edges themselves: a
// shard owns a contiguous edge range across all epochs, so those arrays
// need no synchronization beyond the per-epoch barrier.
func optimizeParallel(emb [][]float32, rows, cols []int32, weights []float32, cfg Config, a, b float32, workers int) {
	if len(rows) == 0 {
		return
	}
	n := len(emb)
	dim := cfg.NComponents

	flat := newAtomicEmbedding(emb, dim)

	var wmax float32
	for _, w := range weights {
		if w > wmax {
			wmax = w
		}
	}
	epochsPerSample := make([]float32, len(weights))
	for i, w := range weights {
		epochsPerSample[i] = wmax / w
	}
	nextEpoch := make([]float32, len(weights))
	copy(nextEpoch, epochsPerSample)

	clip := func(x float32) float32 {
		if x > 4 {
			return 4
		}
		if x < -4 {
			return -4
		}
		return x
	}
	alphaStart := cfg.LearningRate

	// Per-shard RNGs: par.For chunks are deterministic in (len, workers),
	// so seeding by the chunk's start index keeps the negative-sample
	// streams reproducible per shard even though interleaving is not.
	rngs := sync.Map{}
	shardRng := func(lo int) *rand.Rand {
		if v, ok := rngs.Load(lo); ok {
			return v.(*rand.Rand)
		}
		r := rand.New(rand.NewSource(cfg.Seed ^ 0x2545f4914f6cdd1d ^ int64(lo)*0x9e3779b9))
		rngs.Store(lo, r)
		return r
	}

	for epoch := 1; epoch <= cfg.NEpochs; epoch++ {
		alpha := alphaStart * (1 - float32(epoch)/float32(cfg.NEpochs))
		if alpha < alphaStart*0.01 {
			alpha = alphaStart * 0.01
		}
		fe := float32(epoch)
		par.For(len(rows), workers, func(lo, hi int) {
			rng := shardRng(lo)
			vi := make([]float32, dim)
			vj := make([]float32, dim)
			for e := lo; e < hi; e++ {
				if nextEpoch[e] > fe {
					continue
				}
				nextEpoch[e] += epochsPerSample[e]
				i, j := rows[e], cols[e]
				flat.snapshot(int(i), vi)
				flat.snapshot(int(j), vj)
				d2 := l2sq(vi, vj)
				if d2 > 0 {
					g := (-2 * a * b * pow32(d2, b-1)) / (1 + a*pow32(d2, b))
					for dI := 0; dI < dim; dI++ {
						gd := clip(g * (vi[dI] - vj[dI]))
						flat.add(int(i), dI, alpha*gd)
						flat.add(int(j), dI, -alpha*gd)
					}
					// Refresh the local view so the repulsive updates see the
					// attractive move, as the serial in-place loop does.
					flat.snapshot(int(i), vi)
				}
				for s := 0; s < cfg.NegativeSamples; s++ {
					k := int32(rng.Intn(n))
					if k == i {
						continue
					}
					flat.snapshot(int(k), vj)
					d2n := l2sq(vi, vj)
					var g float32
					if d2n > 0 {
						g = (2 * b) / ((0.001 + d2n) * (1 + a*pow32(d2n, b)))
					} else {
						g = 4
					}
					for dI := 0; dI < dim; dI++ {
						var gd float32
						if g > 0 {
							gd = clip(g * (vi[dI] - vj[dI]))
						} else {
							gd = 4
						}
						flat.add(int(i), dI, alpha*gd)
					}
				}
			}
		})
	}
	flat.copyOut(emb)
}

func l2sq(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// atomicEmbedding stores an n×dim float32 matrix as a flat slice of bit
// patterns manipulated with atomic load / CAS, the standard trick for
// lock-free float accumulation in Go (there is no atomic float32 type).
type atomicEmbedding struct {
	bits []uint32
	dim  int
}

func newAtomicEmbedding(emb [][]float32, dim int) *atomicEmbedding {
	f := &atomicEmbedding{bits: make([]uint32, len(emb)*dim), dim: dim}
	for i, row := range emb {
		for d, v := range row {
			f.bits[i*dim+d] = math.Float32bits(v)
		}
	}
	return f
}

// snapshot copies row i into dst coordinate-by-coordinate. Individual loads
// are atomic; the row as a whole may mix updates from concurrent workers,
// which is exactly the staleness Hogwild tolerates.
func (f *atomicEmbedding) snapshot(i int, dst []float32) {
	base := i * f.dim
	for d := range dst {
		dst[d] = math.Float32frombits(atomic.LoadUint32(&f.bits[base+d]))
	}
}

// add atomically performs emb[i][d] += delta via CAS retry.
func (f *atomicEmbedding) add(i, d int, delta float32) {
	p := &f.bits[i*f.dim+d]
	for {
		old := atomic.LoadUint32(p)
		nv := math.Float32bits(math.Float32frombits(old) + delta)
		if atomic.CompareAndSwapUint32(p, old, nv) {
			return
		}
	}
}

func (f *atomicEmbedding) copyOut(emb [][]float32) {
	for i, row := range emb {
		base := i * f.dim
		for d := range row {
			row[d] = math.Float32frombits(atomic.LoadUint32(&f.bits[base+d]))
		}
	}
}
