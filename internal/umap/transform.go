package umap

import (
	"sort"

	"semdisco/internal/vec"
)

// Embedding couples the training data with its learned low-dimensional
// layout so that new points can be mapped into the same space — the
// counterpart of umap-learn's transform().
type Embedding struct {
	cfg    Config
	input  [][]float32
	output [][]float32
}

// FitModel runs Fit and retains what Transform needs. The input slice is
// referenced, not copied; callers must not mutate it afterwards.
func FitModel(points [][]float32, cfg Config) *Embedding {
	out := Fit(points, cfg)
	cfg.fill(len(points))
	return &Embedding{cfg: cfg, input: points, output: out}
}

// Coordinates returns the layout of the training points (aliased, read
// only).
func (e *Embedding) Coordinates() [][]float32 { return e.output }

// Len returns the number of embedded training points.
func (e *Embedding) Len() int { return len(e.input) }

// Transform maps a new point into the learned space: it is placed at the
// distance-weighted mean of its NNeighbors nearest training points'
// embeddings — the initialization umap-learn's transform uses (we skip
// the optional SGD refinement; for cluster assignment, which is what CTS
// needs, the initialization is what decides).
func (e *Embedding) Transform(p []float32) []float32 {
	k := e.cfg.NNeighbors
	if k > len(e.input) {
		k = len(e.input)
	}
	if k == 0 {
		return make([]float32, e.cfg.NComponents)
	}
	type nd struct {
		idx int
		d   float32
	}
	nds := make([]nd, len(e.input))
	for i, q := range e.input {
		nds[i] = nd{i, vec.L2(p, q)}
	}
	sort.Slice(nds, func(i, j int) bool {
		if nds[i].d != nds[j].d {
			return nds[i].d < nds[j].d
		}
		return nds[i].idx < nds[j].idx
	})
	nds = nds[:k]

	out := make([]float32, e.cfg.NComponents)
	var totalW float32
	const eps = 1e-6
	for _, n := range nds {
		w := 1 / (n.d + eps)
		vec.AddScaled(out, w, e.output[n.idx])
		totalW += w
	}
	if totalW > 0 {
		vec.Scale(out, 1/totalW)
	}
	return out
}

// TransformAll maps a batch of points.
func (e *Embedding) TransformAll(points [][]float32) [][]float32 {
	out := make([][]float32, len(points))
	for i, p := range points {
		out[i] = e.Transform(p)
	}
	return out
}
