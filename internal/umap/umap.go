// Package umap implements Uniform Manifold Approximation and Projection
// (McInnes, Healy, Melville 2018) for dimensionality reduction, plus a PCA
// reducer used for initialization and for the CTS ablation study.
//
// The implementation follows the reference pipeline: k-nearest-neighbour
// graph (exact for small inputs, HNSW-approximate for large ones — the
// paper likewise precomputes the kNN "to optimize runtime performance"),
// smooth-kNN-distance calibration, fuzzy simplicial set symmetrization, and
// negative-sampling SGD on the cross-entropy layout objective.
package umap

import (
	"math"
	"math/rand"
	"sort"

	"semdisco/internal/hnsw"
	"semdisco/internal/par"
	"semdisco/internal/vec"
)

// Config controls the embedding.
type Config struct {
	// NComponents is the output dimensionality. Defaults to 16, the value
	// the CTS pipeline uses (2 is typical for visualization).
	NComponents int
	// NNeighbors controls the locality of the manifold approximation.
	// Defaults to 15.
	NNeighbors int
	// MinDist is the minimum output-space separation. Defaults to 0.1.
	MinDist float32
	// NEpochs is the number of SGD passes. Defaults to 200 for inputs up to
	// 10k points and 60 beyond.
	NEpochs int
	// LearningRate defaults to 1.0.
	LearningRate float32
	// NegativeSamples per positive edge. Defaults to 5.
	NegativeSamples int
	// Seed makes the embedding deterministic.
	Seed int64
	// ExactKNNThreshold: inputs up to this size use exact O(n²) kNN, larger
	// ones use an HNSW approximation. Defaults to 3000.
	ExactKNNThreshold int
	// Workers bounds build parallelism. 0 or 1 runs the historical serial
	// pipeline, bit-identical for a fixed seed. With 2+ workers the kNN
	// graph construction shards across points and the SGD runs lock-free
	// Hogwild-style over edge shards, so the embedding varies slightly
	// between runs (as with every parallel UMAP); cluster structure is
	// preserved and asserted by the package tests.
	Workers int
}

func (c *Config) fill(n int) {
	if c.NComponents == 0 {
		c.NComponents = 16
	}
	if c.NNeighbors == 0 {
		c.NNeighbors = 15
	}
	if c.MinDist == 0 {
		c.MinDist = 0.1
	}
	if c.NEpochs == 0 {
		if n > 10000 {
			c.NEpochs = 60
		} else {
			c.NEpochs = 200
		}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1.0
	}
	if c.NegativeSamples == 0 {
		c.NegativeSamples = 5
	}
	if c.ExactKNNThreshold == 0 {
		c.ExactKNNThreshold = 3000
	}
}

// Fit embeds points into cfg.NComponents dimensions.
func Fit(points [][]float32, cfg Config) [][]float32 {
	n := len(points)
	cfg.fill(n)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return [][]float32{make([]float32, cfg.NComponents)}
	}
	k := cfg.NNeighbors
	if k >= n {
		k = n - 1
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	knnIdx, knnDist := knnGraph(points, k, cfg.ExactKNNThreshold, cfg.Seed, workers)
	rows, cols, weights := fuzzySimplicialSet(knnIdx, knnDist)
	emb := randomProjectionInit(points, cfg.NComponents, cfg.Seed)
	a, b := fitAB(1.0, float64(cfg.MinDist))
	if workers > 1 {
		optimizeParallel(emb, rows, cols, weights, cfg, float32(a), float32(b), workers)
	} else {
		optimize(emb, rows, cols, weights, cfg, float32(a), float32(b))
	}
	return emb
}

// knnGraph returns, for each point, the indices and distances of its k
// nearest neighbours (self excluded). Rows are independent, so both the
// exact and the query phase of the approximate path shard across workers
// without changing the result; only the HNSW construction itself depends
// on insert order when built concurrently.
func knnGraph(points [][]float32, k, exactThreshold int, seed int64, workers int) (idx [][]int32, dist [][]float32) {
	n := len(points)
	idx = make([][]int32, n)
	dist = make([][]float32, n)
	if n <= exactThreshold {
		type nd struct {
			id int32
			d  float32
		}
		par.For(n, workers, func(lo, hi int) {
			buf := make([]nd, 0, n)
			for i := lo; i < hi; i++ {
				buf = buf[:0]
				for j := range points {
					if i == j {
						continue
					}
					buf = append(buf, nd{int32(j), vec.L2(points[i], points[j])})
				}
				sort.Slice(buf, func(a, b int) bool {
					if buf[a].d != buf[b].d {
						return buf[a].d < buf[b].d
					}
					return buf[a].id < buf[b].id
				})
				m := k
				if m > len(buf) {
					m = len(buf)
				}
				idx[i] = make([]int32, m)
				dist[i] = make([]float32, m)
				for t := 0; t < m; t++ {
					idx[i][t] = buf[t].id
					dist[i][t] = buf[t].d
				}
			}
		})
		return idx, dist
	}
	// Approximate path: build an HNSW over the points.
	ix := hnsw.New(hnsw.Config{M: 16, EfConstruction: 100, Seed: seed}, func(a, b int32) float32 {
		return vec.L2Sq(points[a], points[b])
	})
	ix.AddBatch(n, workers)
	par.For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			self := int32(i)
			res := ix.Search(func(id int32) float32 {
				return vec.L2Sq(points[i], points[id])
			}, k+1, 2*(k+1), func(id int32) bool { return id != self })
			m := len(res)
			if m > k {
				m = k
			}
			idx[i] = make([]int32, m)
			dist[i] = make([]float32, m)
			for t := 0; t < m; t++ {
				idx[i][t] = res[t].ID
				dist[i][t] = float32(math.Sqrt(float64(res[t].Dist)))
			}
		}
	})
	return idx, dist
}

// fuzzySimplicialSet computes per-point (rho, sigma) by the smooth-kNN-dist
// binary search and returns the symmetrized weighted edge list.
func fuzzySimplicialSet(knnIdx [][]int32, knnDist [][]float32) (rows, cols []int32, weights []float32) {
	n := len(knnIdx)
	directed := make([]map[int32]float32, n)
	for i := 0; i < n; i++ {
		ds := knnDist[i]
		if len(ds) == 0 {
			directed[i] = map[int32]float32{}
			continue
		}
		rho := ds[0]
		sigma := smoothKNNDist(ds, rho)
		m := make(map[int32]float32, len(ds))
		for t, j := range knnIdx[i] {
			d := float64(ds[t] - rho)
			if d < 0 {
				d = 0
			}
			w := float32(math.Exp(-d / sigma))
			m[j] = w
		}
		directed[i] = m
	}
	// Symmetrize: w = a + b - ab (probabilistic t-conorm). Iterate in kNN
	// order, not map order, so the edge list — and therefore the SGD
	// sampling sequence — is deterministic.
	seen := make(map[[2]int32]struct{})
	for i := 0; i < n; i++ {
		for _, j := range knnIdx[i] {
			key := [2]int32{int32(i), j}
			if int32(i) > j {
				key = [2]int32{j, int32(i)}
			}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			wij := directed[i][j]
			wji := directed[j][int32(i)]
			w := wij + wji - wij*wji
			if w <= 0 {
				continue
			}
			rows = append(rows, key[0])
			cols = append(cols, key[1])
			weights = append(weights, w)
		}
	}
	return rows, cols, weights
}

// smoothKNNDist binary-searches sigma so that the effective neighbourhood
// size Σ exp(-(d-rho)/sigma) equals log2(k).
func smoothKNNDist(ds []float32, rho float32) float64 {
	target := math.Log2(float64(len(ds)))
	lo, hi := 0.0, math.Inf(1)
	sigma := 1.0
	for iter := 0; iter < 64; iter++ {
		var sum float64
		for _, d := range ds {
			x := float64(d - rho)
			if x < 0 {
				x = 0
			}
			sum += math.Exp(-x / sigma)
		}
		if math.Abs(sum-target) < 1e-5 {
			break
		}
		if sum > target {
			hi = sigma
			sigma = (lo + hi) / 2
		} else {
			lo = sigma
			if math.IsInf(hi, 1) {
				sigma *= 2
			} else {
				sigma = (lo + hi) / 2
			}
		}
	}
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	return sigma
}

// randomProjectionInit projects the input through a seeded Gaussian matrix,
// the cheap structure-preserving initialization (Johnson–Lindenstrauss).
func randomProjectionInit(points [][]float32, outDim int, seed int64) [][]float32 {
	inDim := len(points[0])
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	proj := make([][]float32, outDim)
	scale := float32(1 / math.Sqrt(float64(inDim)))
	for c := range proj {
		row := make([]float32, inDim)
		for d := range row {
			row[d] = float32(rng.NormFloat64()) * scale
		}
		proj[c] = row
	}
	out := make([][]float32, len(points))
	for i, p := range points {
		e := make([]float32, outDim)
		for c := range proj {
			e[c] = vec.Dot(proj[c], p) * 10
		}
		out[i] = e
	}
	return out
}

// fitAB fits the curve 1/(1+a·x^{2b}) to the target membership function
// exp(-(x-minDist)/spread) for x > minDist (1 below), via coarse grid plus
// local refinement — adequate because the objective is smooth and the
// optimum is loosely constrained.
func fitAB(spread, minDist float64) (a, b float64) {
	target := func(x float64) float64 {
		if x <= minDist {
			return 1
		}
		return math.Exp(-(x - minDist) / spread)
	}
	loss := func(a, b float64) float64 {
		var s float64
		for i := 1; i <= 60; i++ {
			x := 3 * spread * float64(i) / 60
			f := 1 / (1 + a*math.Pow(x, 2*b))
			d := f - target(x)
			s += d * d
		}
		return s
	}
	bestA, bestB, bestL := 1.0, 1.0, math.Inf(1)
	for a := 0.5; a <= 3.0; a += 0.05 {
		for b := 0.5; b <= 2.0; b += 0.05 {
			if l := loss(a, b); l < bestL {
				bestA, bestB, bestL = a, b, l
			}
		}
	}
	// One refinement pass around the grid optimum.
	for a := bestA - 0.05; a <= bestA+0.05; a += 0.005 {
		for b := bestB - 0.05; b <= bestB+0.05; b += 0.005 {
			if l := loss(a, b); l < bestL {
				bestA, bestB, bestL = a, b, l
			}
		}
	}
	return bestA, bestB
}

// optimize runs the negative-sampling SGD over the fuzzy graph.
func optimize(emb [][]float32, rows, cols []int32, weights []float32, cfg Config, a, b float32) {
	if len(rows) == 0 {
		return
	}
	n := len(emb)
	dim := cfg.NComponents
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x2545f4914f6cdd1d))

	// epochsPerSample: edges with higher membership are updated more often.
	var wmax float32
	for _, w := range weights {
		if w > wmax {
			wmax = w
		}
	}
	epochsPerSample := make([]float32, len(weights))
	for i, w := range weights {
		epochsPerSample[i] = wmax / w
	}
	nextEpoch := make([]float32, len(weights))
	copy(nextEpoch, epochsPerSample)

	clip := func(x float32) float32 {
		if x > 4 {
			return 4
		}
		if x < -4 {
			return -4
		}
		return x
	}
	alphaStart := cfg.LearningRate
	for epoch := 1; epoch <= cfg.NEpochs; epoch++ {
		alpha := alphaStart * (1 - float32(epoch)/float32(cfg.NEpochs))
		if alpha < alphaStart*0.01 {
			alpha = alphaStart * 0.01
		}
		fe := float32(epoch)
		for e := range rows {
			if nextEpoch[e] > fe {
				continue
			}
			nextEpoch[e] += epochsPerSample[e]
			i, j := rows[e], cols[e]
			vi, vj := emb[i], emb[j]
			d2 := vec.L2Sq(vi, vj)
			// Attractive gradient.
			if d2 > 0 {
				g := (-2 * a * b * pow32(d2, b-1)) / (1 + a*pow32(d2, b))
				for dI := 0; dI < dim; dI++ {
					gd := clip(g * (vi[dI] - vj[dI]))
					vi[dI] += alpha * gd
					vj[dI] -= alpha * gd
				}
			}
			// Repulsive updates against random negatives.
			for s := 0; s < cfg.NegativeSamples; s++ {
				k := int32(rng.Intn(n))
				if k == i {
					continue
				}
				vk := emb[k]
				d2n := vec.L2Sq(vi, vk)
				var g float32
				if d2n > 0 {
					g = (2 * b) / ((0.001 + d2n) * (1 + a*pow32(d2n, b)))
				} else {
					g = 4
				}
				for dI := 0; dI < dim; dI++ {
					var gd float32
					if g > 0 {
						gd = clip(g * (vi[dI] - vk[dI]))
					} else {
						gd = 4
					}
					vi[dI] += alpha * gd
				}
			}
		}
	}
}

func pow32(x, p float32) float32 {
	return float32(math.Pow(float64(x), float64(p)))
}
