package text

import (
	"bytes"
	"encoding/gob"
)

// statsImage is the exported gob shadow of CorpusStats.
type statsImage struct {
	DocCount  int
	DocFreq   map[string]int
	TermCount map[string]int64
	TotalLen  int64
}

// GobEncode implements gob.GobEncoder so corpus statistics can persist
// alongside the engines that depend on them for IDF weighting.
func (c *CorpusStats) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(statsImage{
		DocCount:  c.docCount,
		DocFreq:   c.docFreq,
		TermCount: c.termCount,
		TotalLen:  c.totalLen,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (c *CorpusStats) GobDecode(data []byte) error {
	var img statsImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return err
	}
	c.docCount = img.DocCount
	c.docFreq = img.DocFreq
	c.termCount = img.TermCount
	c.totalLen = img.TotalLen
	if c.docFreq == nil {
		c.docFreq = make(map[string]int)
	}
	if c.termCount == nil {
		c.termCount = make(map[string]int64)
	}
	return nil
}
