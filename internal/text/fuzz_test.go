package text

import (
	"testing"
	"unicode/utf8"
)

// FuzzStem: the stemmer must never panic, never grow a token by more than
// one byte, and must be deterministic.
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "vaccination", "flies", "agreed", "sky",
		"controlling", "sses", "ied", "eed", "ing", "y", "bb",
		"xxxxxxxxxxxxxxxxxxxxxxxxxxxxing", "ational", "iviti",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// The stemmer operates on lowercase tokens; feed it what the
		// tokenizer would produce.
		for _, tok := range Tokenize(s) {
			got := Stem(tok)
			if len(got) > len(tok)+1 {
				t.Fatalf("Stem(%q)=%q grew too much", tok, got)
			}
			if got != Stem(tok) {
				t.Fatalf("Stem(%q) not deterministic", tok)
			}
		}
	})
}

// FuzzTokenize: tokens are non-empty, valid UTF-8 and contain no
// separators.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "COVID-19", "2021-01-01", "日本語 text",
		"a,b;c", "\x00\x01", "ünïcödé", "tab\tsep",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if !utf8.ValidString(tok) {
				t.Fatalf("invalid UTF-8 token %q", tok)
			}
			for _, r := range tok {
				if r == ' ' || r == ',' || r == '\n' {
					t.Fatalf("separator inside token %q", tok)
				}
			}
		}
	})
}
