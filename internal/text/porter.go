package text

// Stem applies the classic Porter (1980) stemming algorithm to a lowercase
// token. It is used by the syntactic baselines (WS, MDR, TCS) so that
// "vaccines" matches "vaccine" the way Lucene-era IR systems would, and by
// the encoder's lexicon lookup.
//
// The implementation follows the five-step structure of the original paper.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := stemWord{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

type stemWord struct {
	b []byte
}

func (w *stemWord) isConsonant(i int) bool {
	switch w.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !w.isConsonant(i - 1)
	}
	return true
}

// measure counts VC sequences in the stem b[0:end].
func (w *stemWord) measure(end int) int {
	n := 0
	i := 0
	for i < end && w.isConsonant(i) {
		i++
	}
	for {
		if i >= end {
			return n
		}
		for i < end && !w.isConsonant(i) {
			i++
		}
		if i >= end {
			return n
		}
		n++
		for i < end && w.isConsonant(i) {
			i++
		}
	}
}

func (w *stemWord) hasSuffix(s string) bool {
	if len(s) > len(w.b) {
		return false
	}
	return string(w.b[len(w.b)-len(s):]) == s
}

// stemEnd returns the length of the stem once suffix s is removed.
func (w *stemWord) stemEnd(s string) int { return len(w.b) - len(s) }

func (w *stemWord) containsVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !w.isConsonant(i) {
			return true
		}
	}
	return false
}

func (w *stemWord) doubleConsonant() bool {
	n := len(w.b)
	if n < 2 {
		return false
	}
	return w.b[n-1] == w.b[n-2] && w.isConsonant(n-1)
}

// cvc reports whether the stem ending at end has the consonant-vowel-consonant
// shape where the final consonant is not w, x or y.
func (w *stemWord) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !w.isConsonant(end-3) || w.isConsonant(end-2) || !w.isConsonant(end-1) {
		return false
	}
	switch w.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func (w *stemWord) replace(suffix, repl string) {
	w.b = append(w.b[:len(w.b)-len(suffix)], repl...)
}

func (w *stemWord) step1a() {
	switch {
	case w.hasSuffix("sses"):
		w.replace("sses", "ss")
	case w.hasSuffix("ies"):
		w.replace("ies", "i")
	case w.hasSuffix("ss"):
		// keep
	case w.hasSuffix("s"):
		w.replace("s", "")
	}
}

func (w *stemWord) step1b() {
	if w.hasSuffix("eed") {
		if w.measure(w.stemEnd("eed")) > 0 {
			w.replace("eed", "ee")
		}
		return
	}
	cleanup := false
	switch {
	case w.hasSuffix("ed") && w.containsVowel(w.stemEnd("ed")):
		w.replace("ed", "")
		cleanup = true
	case w.hasSuffix("ing") && w.containsVowel(w.stemEnd("ing")):
		w.replace("ing", "")
		cleanup = true
	}
	if !cleanup {
		return
	}
	switch {
	case w.hasSuffix("at"):
		w.replace("at", "ate")
	case w.hasSuffix("bl"):
		w.replace("bl", "ble")
	case w.hasSuffix("iz"):
		w.replace("iz", "ize")
	case w.doubleConsonant():
		last := w.b[len(w.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			w.b = w.b[:len(w.b)-1]
		}
	case w.measure(len(w.b)) == 1 && w.cvc(len(w.b)):
		w.b = append(w.b, 'e')
	}
}

func (w *stemWord) step1c() {
	if w.hasSuffix("y") && w.containsVowel(len(w.b)-1) {
		w.b[len(w.b)-1] = 'i'
	}
}

var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func (w *stemWord) step2() {
	for _, r := range step2Rules {
		if w.hasSuffix(r.suffix) {
			if w.measure(w.stemEnd(r.suffix)) > 0 {
				w.replace(r.suffix, r.repl)
			}
			return
		}
	}
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (w *stemWord) step3() {
	for _, r := range step3Rules {
		if w.hasSuffix(r.suffix) {
			if w.measure(w.stemEnd(r.suffix)) > 0 {
				w.replace(r.suffix, r.repl)
			}
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (w *stemWord) step4() {
	for _, s := range step4Suffixes {
		if !w.hasSuffix(s) {
			continue
		}
		end := w.stemEnd(s)
		if w.measure(end) <= 1 {
			return
		}
		if s == "ion" {
			if end == 0 || (w.b[end-1] != 's' && w.b[end-1] != 't') {
				return
			}
		}
		w.replace(s, "")
		return
	}
}

func (w *stemWord) step5a() {
	if !w.hasSuffix("e") {
		return
	}
	end := w.stemEnd("e")
	m := w.measure(end)
	if m > 1 || (m == 1 && !w.cvc(end)) {
		w.replace("e", "")
	}
}

func (w *stemWord) step5b() {
	if w.measure(len(w.b)) > 1 && w.doubleConsonant() && w.b[len(w.b)-1] == 'l' {
		w.b = w.b[:len(w.b)-1]
	}
}
