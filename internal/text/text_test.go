package text

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"COVID-19 vaccine", []string{"covid", "19", "vaccine"}},
		{"2021-01-01", []string{"2021", "01", "01"}},
		{"Pfizer-BioNTech", []string{"pfizer", "biontech"}},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"mixed123case", []string{"mixed", "123", "case"}},
		{"ünïcödé Wörds", []string{"ünïcödé", "wörds"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeAllLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || IsStopword("vaccine") {
		t.Fatal("stopword classification wrong")
	}
	got := RemoveStopwords([]string{"the", "covid", "vaccine", "of", "europe"})
	want := []string{"covid", "vaccine", "europe"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoveStopwords=%v", got)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("where", 3)
	want := []string{"<wh", "whe", "her", "ere", "re>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CharNGrams=%v want %v", got, want)
	}
	short := CharNGrams("ab", 5)
	if !reflect.DeepEqual(short, []string{"<ab>"}) {
		t.Fatalf("short CharNGrams=%v", short)
	}
	if CharNGrams("x", 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestWordNGrams(t *testing.T) {
	got := WordNGrams([]string{"a", "b", "c"}, 2)
	want := []string{"a b", "b c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WordNGrams=%v", got)
	}
	if WordNGrams([]string{"a"}, 2) != nil {
		t.Fatal("too-short input should return nil")
	}
}

func TestIsNumeric(t *testing.T) {
	if !IsNumeric("2021") || IsNumeric("20a21") || IsNumeric("") {
		t.Fatal("IsNumeric wrong")
	}
}

// Porter test vectors from the original distribution's voc.txt/output.txt
// (a representative sample) plus IR-classic examples.
func TestPorterStem(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		"vaccines":       "vaccin",
		"vaccination":    "vaccin",
		"olympics":       "olymp",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q)=%q want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnShort(t *testing.T) {
	for _, w := range []string{"", "a", "ab", "be", "is"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q)=%q want unchanged", w, got)
		}
	}
}

func TestStemNeverGrowsMuch(t *testing.T) {
	// Stemming may add at most one char (e.g. "hoping"->"hope").
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if len(Stem(tok)) > len(tok)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusStats(t *testing.T) {
	var cs CorpusStats
	cs.AddDocument([]string{"covid", "vaccine", "vaccine"})
	cs.AddDocument([]string{"climate", "europe"})
	cs.AddDocument([]string{"covid", "europe"})

	if cs.DocCount() != 3 {
		t.Fatalf("DocCount=%d", cs.DocCount())
	}
	if cs.DocFreq("covid") != 2 {
		t.Fatalf("DocFreq(covid)=%d", cs.DocFreq("covid"))
	}
	if cs.CollectionFreq("vaccine") != 2 {
		t.Fatalf("CollectionFreq(vaccine)=%d", cs.CollectionFreq("vaccine"))
	}
	if cs.CollectionLen() != 7 {
		t.Fatalf("CollectionLen=%d", cs.CollectionLen())
	}
	// Rarer terms must get higher IDF.
	if cs.IDF("climate") <= cs.IDF("covid") {
		t.Fatal("IDF ordering wrong")
	}
	// Unseen terms are defined and have the highest IDF.
	if cs.IDF("zzz") <= cs.IDF("climate") {
		t.Fatal("unseen IDF should exceed seen IDF")
	}
	if p := cs.CollectionProb("covid"); p <= 0 || p >= 1 {
		t.Fatalf("CollectionProb out of range: %v", p)
	}
	if cs.CollectionProb("zzz") <= 0 {
		t.Fatal("unseen CollectionProb must be positive")
	}
}

func TestCorpusStatsEmpty(t *testing.T) {
	var cs CorpusStats
	if cs.CollectionProb("x") <= 0 {
		t.Fatal("empty-corpus CollectionProb must be positive")
	}
	if math.IsNaN(cs.IDF("x")) || math.IsInf(cs.IDF("x"), 0) {
		t.Fatal("empty-corpus IDF must be finite")
	}
}
