// Package text provides the lexical layer shared by the sentence encoder and
// the syntactic baselines: tokenization, stopword filtering, Porter stemming,
// character n-grams and corpus-level term statistics.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters or digits; everything else is a separator. Mixed alphanumeric runs
// ("covid19", "2021-01-01") split into their letter and digit parts so that
// numbers remain individually matchable, mirroring how word-piece tokenizers
// isolate digit groups.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	var curKind rune // 'a' letters, 'd' digits, 0 none
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
		curKind = 0
	}
	for _, r := range s {
		var kind rune
		switch {
		case unicode.IsLetter(r):
			kind = 'a'
		case unicode.IsDigit(r):
			kind = 'd'
		default:
			flush()
			continue
		}
		if curKind != 0 && kind != curKind {
			flush()
		}
		curKind = kind
		cur.WriteRune(unicode.ToLower(r))
	}
	flush()
	return out
}

// stopwords is the standard short English stop list used by the syntactic
// baselines and by IDF weighting in the encoder.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "if": {}, "in": {}, "into": {}, "is": {},
	"it": {}, "no": {}, "not": {}, "of": {}, "on": {}, "or": {}, "such": {},
	"that": {}, "the": {}, "their": {}, "then": {}, "there": {}, "these": {},
	"they": {}, "this": {}, "to": {}, "was": {}, "will": {}, "with": {},
	"from": {}, "has": {}, "have": {}, "had": {}, "he": {}, "she": {},
	"we": {}, "you": {}, "i": {}, "its": {}, "were": {}, "been": {},
	"about": {}, "after": {}, "all": {}, "also": {}, "can": {}, "which": {},
	"what": {}, "when": {}, "where": {}, "who": {}, "how": {}, "than": {},
	"each": {}, "per": {}, "via": {}, "between": {}, "during": {},
}

// IsStopword reports whether the (already lowercase) token is on the stop
// list.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

// RemoveStopwords returns toks without stopword entries, preserving order.
// The input slice is not modified.
func RemoveStopwords(toks []string) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

// CharNGrams returns the character n-grams of tok with boundary markers,
// fastText style: "where" with n=3 yields "<wh", "whe", "her", "ere", "re>".
// Tokens shorter than n-1 runes yield the single padded token "<tok>".
func CharNGrams(tok string, n int) []string {
	if n <= 0 {
		return nil
	}
	padded := "<" + tok + ">"
	runes := []rune(padded)
	if len(runes) <= n {
		return []string{padded}
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// WordNGrams returns the word n-grams (joined with a space) of toks.
func WordNGrams(toks []string, n int) []string {
	if n <= 0 || len(toks) < n {
		return nil
	}
	out := make([]string, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		out = append(out, strings.Join(toks[i:i+n], " "))
	}
	return out
}

// IsNumeric reports whether the token consists solely of digits.
func IsNumeric(tok string) bool {
	if tok == "" {
		return false
	}
	for _, r := range tok {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}
