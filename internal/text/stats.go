package text

import "math"

// CorpusStats accumulates document-frequency statistics over a corpus so the
// encoder and the baselines can weight terms by informativeness.
//
// The zero value is ready to use.
type CorpusStats struct {
	docCount  int
	docFreq   map[string]int
	termCount map[string]int64
	totalLen  int64
}

// AddDocument registers one document's tokens. Document frequency counts a
// term once per document; collection frequency counts every occurrence.
func (c *CorpusStats) AddDocument(tokens []string) {
	if c.docFreq == nil {
		c.docFreq = make(map[string]int)
		c.termCount = make(map[string]int64)
	}
	c.docCount++
	c.totalLen += int64(len(tokens))
	seen := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		c.termCount[t]++
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		c.docFreq[t]++
	}
}

// DocCount returns the number of documents added.
func (c *CorpusStats) DocCount() int { return c.docCount }

// DocFreq returns the number of documents containing term.
func (c *CorpusStats) DocFreq(term string) int { return c.docFreq[term] }

// CollectionFreq returns the total number of occurrences of term.
func (c *CorpusStats) CollectionFreq(term string) int64 { return c.termCount[term] }

// CollectionLen returns the total token count over all documents.
func (c *CorpusStats) CollectionLen() int64 { return c.totalLen }

// IDF returns the smoothed inverse document frequency of term:
// ln((N+1)/(df+1)) + 1, which is strictly positive and defined for unseen
// terms.
func (c *CorpusStats) IDF(term string) float64 {
	df := c.docFreq[term]
	return math.Log(float64(c.docCount+1)/float64(df+1)) + 1
}

// CollectionProb returns the unigram collection language-model probability of
// term with add-one smoothing over the observed vocabulary, used for
// Dirichlet-smoothed query likelihood in the MDR baseline.
func (c *CorpusStats) CollectionProb(term string) float64 {
	if c.totalLen == 0 {
		return 1e-9
	}
	cf := c.termCount[term]
	return (float64(cf) + 0.5) / (float64(c.totalLen) + float64(len(c.termCount))*0.5)
}
