package semdisco

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// churnTopics gives each synthetic relation a distinct repeatable topic.
var churnTopics = []string{
	"solar panels photovoltaic energy", "marine biology coral fish",
	"steam locomotive railway trains", "volcanic basalt magma geology",
	"baroque violin concerto music", "quantum entanglement photons physics",
	"sourdough fermentation baking bread", "glacier moraine ice erosion",
	"honeybee pollination hive nectar", "suspension bridge cable engineering",
	"rainforest canopy epiphyte ecology", "ceramic kiln glaze pottery",
	"cardiac ventricle artery anatomy", "sailing regatta spinnaker wind",
	"copper smelting ore metallurgy", "alpine meadow wildflower botany",
}

var churnQueries = []string{
	"solar energy", "coral fish", "railway trains", "magma geology",
	"violin music", "quantum physics", "baking bread", "honeybee nectar",
}

func churnRelation(id string, i int) *Relation {
	topic := churnTopics[i%len(churnTopics)]
	return &Relation{
		ID: id, Source: fmt.Sprintf("src-%d", i%3),
		Columns: []string{"A", "B"},
		Rows:    [][]string{{topic + " alpha", topic + " beta"}, {topic + " gamma", "42"}},
	}
}

// churnConfig pins the IDF to a constant so a churned engine and a fresh
// build over the surviving corpus score identically — corpus-derived IDF
// would differ between the two corpora by construction.
func churnConfig(seg SegmentsConfig) Config {
	return Config{
		Method: ExS, Dim: 64, Seed: 1,
		IDF:      func(string) float64 { return 1 },
		Segments: seg,
	}
}

func churnEngine(t testing.TB, n int, seg SegmentsConfig) (*Engine, map[string]*Relation) {
	t.Helper()
	fed := NewFederation()
	rels := make(map[string]*Relation, n)
	for i := 0; i < n; i++ {
		r := churnRelation(fmt.Sprintf("rel-%02d", i), i)
		if err := fed.Add(r); err != nil {
			t.Fatal(err)
		}
		rels[r.ID] = r
	}
	eng, err := Open(fed, churnConfig(seg))
	if err != nil {
		t.Fatal(err)
	}
	return eng, rels
}

// freshEngine rebuilds an engine from scratch over the given live corpus in
// the given order — the reference a churned engine must match.
func freshEngine(t testing.TB, rels map[string]*Relation, order []string) *Engine {
	t.Helper()
	fed := NewFederation()
	for _, id := range order {
		if err := fed.Add(rels[id]); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := Open(fed, churnConfig(SegmentsConfig{Manual: true}))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineDeleteUpdate: Delete and Update are visible across every
// search surface of the engine — Search, SearchBatch, SearchSources and
// SearchDatasets — for all three methods.
func TestEngineDeleteUpdate(t *testing.T) {
	fed := vaccineFederation(t)
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(fed, Config{
			Method: m, Dim: 128, Seed: 1,
			Lexicon: vaccineLexicon(),
			CTS:     CTSOptions{MinClusterSize: 4, UMAPEpochs: 60},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := eng.Delete("who"); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if eng.Has("who") || !eng.Has("ecdc") {
			t.Fatalf("%v: Has after delete", m)
		}
		if eng.NumRelations() != 2 {
			t.Fatalf("%v: NumRelations=%d", m, eng.NumRelations())
		}
		assertNo := func(surface string, ms []Match) {
			t.Helper()
			for _, match := range ms {
				if match.RelationID == "who" {
					t.Fatalf("%v: deleted relation served by %s: %v", m, surface, ms)
				}
			}
		}
		ms, err := eng.Search("COVID vaccine", 5)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		assertNo("Search", ms)
		ms, err = eng.SearchSources("COVID vaccine", 5, "WHO", "ECDC")
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		assertNo("SearchSources", ms)
		batch, err := eng.SearchBatch(context.Background(), []Query{{Text: "COVID vaccine", K: 5}})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		assertNo("SearchBatch", batch[0].Matches)
		ds, err := eng.SearchDatasets("COVID vaccine", 5)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, d := range ds {
			assertNo("SearchDatasets", d.Relations)
			if d.Source == "WHO" {
				t.Fatalf("%v: dataset of a fully deleted source survives: %+v", m, ds)
			}
		}

		// Update: minerals becomes a vaccine table and must start matching.
		if err := eng.Update(&Relation{
			ID: "minerals", Source: "USGS",
			Columns: []string{"Region", "Vaccine"},
			Rows:    [][]string{{"Asia", "Comirnaty COVID-19 vaccine"}},
		}); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		ms, err = eng.Search("COVID vaccine", 3)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		found := false
		for _, match := range ms {
			found = found || match.RelationID == "minerals"
		}
		if !found {
			t.Fatalf("%v: updated relation not served: %v", m, ms)
		}
		if err := eng.Update(&Relation{ID: "ghost", Columns: []string{"A"}, Rows: [][]string{{"x"}}}); err == nil {
			t.Fatalf("%v: update of unknown relation accepted", m)
		}
		if err := eng.Delete("ghost"); err == nil {
			t.Fatalf("%v: delete of unknown relation accepted", m)
		}
	}
}

// TestEngineChurnEquivalence is the PR's acceptance pin: an engine churned
// through deletes (≥20% of relations), updates and adds, with at least one
// completed compaction, returns ExS results bit-identical to an engine
// freshly built from the surviving corpus.
func TestEngineChurnEquivalence(t *testing.T) {
	const n = 20
	eng, rels := churnEngine(t, n, SegmentsConfig{Manual: true, MaxMutableValues: 8})

	// Churn: delete 5/20 (25%), update 3, add 5, with a seal mid-stream.
	for _, id := range []string{"rel-01", "rel-05", "rel-09", "rel-13", "rel-17"} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(rels, id)
	}
	for i, id := range []string{"rel-02", "rel-10", "rel-18"} {
		r := churnRelation(id, i+7)
		r.Rows = append(r.Rows, []string{"updated telescope observatory", "astronomy"})
		if err := eng.Update(r); err != nil {
			t.Fatal(err)
		}
		rels[id] = r
	}
	if err := eng.CompactionCheck(); err != nil { // seal the mutable segment
		t.Fatal(err)
	}
	for i := n; i < n+5; i++ {
		r := churnRelation(fmt.Sprintf("rel-%02d", i), i)
		if err := eng.Add(r); err != nil {
			t.Fatal(err)
		}
		rels[r.ID] = r
	}

	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	st := eng.SegmentStats()
	if st.Compactions < 1 {
		t.Fatalf("no compaction completed: %+v", st)
	}
	if st.DeadRelations != 0 || st.Segments != 1 {
		t.Fatalf("compaction left garbage: %+v", st)
	}
	if st.LiveRelations != len(rels) {
		t.Fatalf("live relations %d, want %d", st.LiveRelations, len(rels))
	}

	live := eng.LiveRelations()
	if len(live) != len(rels) {
		t.Fatalf("LiveRelations: %d ids, want %d", len(live), len(rels))
	}
	fresh := freshEngine(t, rels, live)
	for _, q := range churnQueries {
		got, err := eng.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Search(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %q diverged from fresh build:\n got: %v\nwant: %v", q, got, want)
		}
	}
}

// TestEngineSearchNonBlockingDuringCompaction: with no mutations in
// flight, concurrent searches across a full seal → merge → swap cycle
// return bit-identical results to the pre-compaction snapshot — readers
// never block on, or observe, the rebuild. Run with -race this also
// checks the reader/maintenance synchronization.
func TestEngineSearchNonBlockingDuringCompaction(t *testing.T) {
	const n = 16
	eng, _ := churnEngine(t, n, SegmentsConfig{Manual: true, MaxMutableValues: 4})
	for i := n; i < n+6; i++ {
		if err := eng.Add(churnRelation(fmt.Sprintf("rel-%02d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"rel-03", "rel-07", "rel-11", "rel-15", "rel-19"} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	expected := make(map[string][]Match)
	for _, q := range churnQueries {
		m, err := eng.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = m
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := churnQueries[(w+i)%len(churnQueries)]
				var got []Match
				var err error
				if w%2 == 0 {
					got, err = eng.Search(q, 5)
				} else {
					var batch []BatchResult
					batch, err = eng.SearchBatch(context.Background(), []Query{{Text: q, K: 5}})
					if err == nil {
						got = batch[0].Matches
					}
				}
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, expected[q]) {
					errs <- fmt.Errorf("query %q changed during compaction:\n got: %v\nwant: %v", q, got, expected[q])
					return
				}
			}
		}(w)
	}

	if err := eng.CompactionCheck(); err != nil { // seal + background index build
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil { // merge + swap
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if eng.SegmentStats().Compactions < 1 {
		t.Fatal("compaction did not run")
	}
}

// TestEngineSaveLoadChurned: a churned multi-segment engine survives a
// Save/Load roundtrip — segment layout, tombstones and results intact.
func TestEngineSaveLoadChurned(t *testing.T) {
	fed := vaccineFederation(t)
	eng, err := Open(fed, Config{
		Method: ExS, Dim: 128, Seed: 1,
		Segments: SegmentsConfig{Manual: true, MaxMutableValues: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(&Relation{
		ID: "mutable-flu", Source: "WHO",
		Columns: []string{"Region", "Strain"},
		Rows:    [][]string{{"Europe", "influenza H1N1"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.CompactionCheck(); err != nil { // seal: multi-segment image
		t.Fatal(err)
	}
	if err := eng.Delete("minerals"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	a, b := eng.SegmentStats(), re.SegmentStats()
	if a.Segments != b.Segments || a.LiveRelations != b.LiveRelations || a.DeadRelations != b.DeadRelations {
		t.Fatalf("segment stats diverged:\n saved:  %+v\n loaded: %+v", a, b)
	}
	if !reflect.DeepEqual(eng.LiveRelations(), re.LiveRelations()) {
		t.Fatal("live-relation order lost in roundtrip")
	}
	for _, q := range []string{"COVID vaccine", "influenza", "mineral hardness"} {
		x, err := eng.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		y, err := re.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("query %q diverged after load:\n got: %v\nwant: %v", q, y, x)
		}
	}
	// The restored engine keeps mutating and compacting.
	if err := re.Delete("mutable-flu"); err != nil {
		t.Fatal(err)
	}
	if err := re.Compact(); err != nil {
		t.Fatal(err)
	}
	if re.Has("mutable-flu") || re.SegmentStats().DeadRelations != 0 {
		t.Fatalf("post-load churn broken: %+v", re.SegmentStats())
	}
}

// TestEngineAutoMaintenance: with automatic maintenance on (the default), a
// burst of churn past the policy thresholds seals and compacts on its own —
// no explicit Compact calls.
func TestEngineAutoMaintenance(t *testing.T) {
	eng, _ := churnEngine(t, 8, SegmentsConfig{
		MaxMutableValues: 8,
		MaxDeadFraction:  0.1,
		DriftCheckEvery:  4,
	})
	stop := eng.StartCompactor()
	defer stop()
	for i := 8; i < 40; i++ {
		if err := eng.Add(churnRelation(fmt.Sprintf("rel-%02d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if err := eng.Delete(fmt.Sprintf("rel-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Automatic passes run in the background; drive one synchronous check
	// to make the test deterministic about the end state.
	if err := eng.CompactionCheck(); err != nil {
		t.Fatal(err)
	}
	st := eng.SegmentStats()
	if st.Seals == 0 && st.Compactions == 0 {
		t.Fatalf("no automatic maintenance happened: %+v", st)
	}
	if eng.NumRelations() != 24 {
		t.Fatalf("NumRelations=%d, want 24", eng.NumRelations())
	}
}

// TestClusterDeleteUpdate: mutations reach the owning shard, invalidate
// the router's result cache, and keep the shard router consistent.
func TestClusterDeleteUpdate(t *testing.T) {
	fed := NewFederation()
	for i := 0; i < 12; i++ {
		if err := fed.Add(churnRelation(fmt.Sprintf("rel-%02d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := NewCluster(fed, ClusterConfig{
		Config:    Config{Method: ExS, Dim: 64, Seed: 1},
		Shards:    3,
		Policy:    ShardRoundRobin,
		CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	res, err := cl.Search("solar energy", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Matches[0].RelationID != "rel-00" {
		t.Fatalf("warmup: %+v", res.Matches)
	}
	if err := cl.Delete("rel-00"); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Search("solar energy", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("stale cache served after delete")
	}
	for _, m := range res.Matches {
		if m.RelationID == "rel-00" {
			t.Fatalf("deleted relation served: %+v", res.Matches)
		}
	}
	if err := cl.Delete("rel-00"); err == nil {
		t.Fatal("double delete accepted")
	}
	if cl.NumRelations() != 11 {
		t.Fatalf("NumRelations=%d, want 11", cl.NumRelations())
	}

	// Update rewrites content in place (same shard) and purges the cache.
	upd := churnRelation("rel-01", 1)
	upd.Rows = [][]string{{"lighthouse beacon coastal", "signal"}}
	if err := cl.Update(upd); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Search("lighthouse beacon", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Matches[0].RelationID != "rel-01" {
		t.Fatalf("updated relation not served: %+v", res.Matches)
	}
	if err := cl.Update(churnRelation("ghost", 0)); err == nil {
		t.Fatal("update of unknown relation accepted")
	}

	// Compaction across shards leaves the cluster consistent.
	if err := cl.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := cl.Stats()
	for i, sh := range stats.Shards {
		if sh.TombstonedRelations != 0 {
			t.Fatalf("shard %d kept tombstones after compact: %+v", i, sh)
		}
		if sh.Segments != 1 {
			t.Fatalf("shard %d segments=%d after compact", i, sh.Segments)
		}
	}
}

// TestClusterSaveLoadChurned: the sharded persistence roundtrip carries
// segment layouts, the owner table and tombstones.
func TestClusterSaveLoadChurned(t *testing.T) {
	fed := NewFederation()
	for i := 0; i < 9; i++ {
		if err := fed.Add(churnRelation(fmt.Sprintf("rel-%02d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := NewCluster(fed, ClusterConfig{
		Config: Config{Method: ExS, Dim: 64, Seed: 1,
			Segments: SegmentsConfig{Manual: true}},
		Shards: 3,
		Policy: ShardRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("rel-04"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add(churnRelation("rel-09", 9)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadCluster(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if re.NumRelations() != cl.NumRelations() {
		t.Fatalf("relations: %d vs %d", re.NumRelations(), cl.NumRelations())
	}
	for _, q := range []string{"solar energy", "coral fish", "honeybee nectar"} {
		a, err := cl.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Matches, b.Matches) {
			t.Fatalf("query %q diverged after load:\n got: %v\nwant: %v", q, b.Matches, a.Matches)
		}
	}
	// Mutations still route correctly after the roundtrip.
	if err := re.Delete("rel-09"); err != nil {
		t.Fatal(err)
	}
	if err := re.Delete("rel-04"); err == nil {
		t.Fatal("tombstone lost in roundtrip: deleted relation resurfaced")
	}
}
