package semdisco

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"semdisco/internal/cluster"
	"semdisco/internal/embed"
	"semdisco/internal/netcluster"
	"semdisco/internal/obs"
)

// EncodedBackend exposes the engine's encoded-search path — what a shard
// server mounts behind the internal wire endpoints (see
// netcluster.ShardHandler). The backend ranks pre-encoded vectors against
// this engine's partition; it is the same code path the in-process cluster
// Router calls, which is what keeps the networked ranking identical.
func (e *Engine) EncodedBackend() netcluster.ShardBackend { return e.store }

// Dim reports the engine's embedding dimensionality.
func (e *Engine) Dim() int { return e.model.Dim() }

// NetShardConfig parameterizes NewNetShard: the shared engine
// configuration plus this server's position in the replica topology.
type NetShardConfig struct {
	Config
	// Sets is the replica-set (partition) count of the whole deployment.
	Sets int
	// Set is this server's set index in [0, Sets).
	Set int
	// Vnodes is the placement ring's virtual-node count per set; it must
	// match the coordinator's (0 means the shared default).
	Vnodes int
}

// NewNetShard builds the engine one shard server of a networked cluster
// hosts: the full federation's IDF statistics feed the encoder — so the
// embedding space is identical on every shard and on the coordinator — but
// only the relations the placement ring assigns to cfg.Set are embedded
// and indexed. Every replica of a set runs this with the same (Sets, Set,
// Vnodes) and holds an identical partition copy.
func NewNetShard(fed *Federation, cfg NetShardConfig) (*Engine, error) {
	if fed == nil || fed.Len() == 0 {
		return nil, fmt.Errorf("semdisco: empty federation")
	}
	if cfg.Sets < 1 {
		return nil, fmt.Errorf("semdisco: invalid set count %d", cfg.Sets)
	}
	if cfg.Set < 0 || cfg.Set >= cfg.Sets {
		return nil, fmt.Errorf("semdisco: set %d out of range [0,%d)", cfg.Set, cfg.Sets)
	}
	ring, err := netcluster.NewRing(cfg.Sets, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.Config.IDF == nil {
		// Full-federation statistics, partition-only index: a query vector
		// must be the same no matter which shard scores it.
		cfg.Config.IDF = statsIDF(federationStats(fed))
	}
	part := NewFederation()
	for _, r := range fed.Relations() {
		if ring.Owner(r.ID) != cfg.Set {
			continue
		}
		if err := part.Add(r); err != nil {
			return nil, fmt.Errorf("semdisco: partitioning set %d: %w", cfg.Set, err)
		}
	}
	if part.Len() == 0 {
		return nil, fmt.Errorf("semdisco: the ring assigns no relations to set %d of %d; use fewer sets for this corpus", cfg.Set, cfg.Sets)
	}
	eng, err := Open(part, cfg.Config)
	if err != nil {
		return nil, err
	}
	return eng, nil
}

// NetCoordinatorConfig parameterizes NewNetCoordinator.
type NetCoordinatorConfig struct {
	// Config supplies the encoder parameters (Dim, Seed, Lexicon, IDF —
	// they must match the shards'), the method label, and the tracing/SLO
	// subsystems' tuning.
	Config
	// Slack widens each set's fetch to k+Slack before the merge; default 8.
	Slack int
	// CacheSize bounds the coordinator's (query, k) result LRU; 0 disables.
	CacheSize int
	// Vnodes is the placement ring's virtual-node count per set; it must
	// match the shards'.
	Vnodes int
	// AttemptTimeout bounds each replica attempt; an expired attempt fails
	// over to the next replica of the set. 0 leaves attempts bounded only
	// by the query's deadline.
	AttemptTimeout time.Duration
	// Hedge races a second replica against an attempt running past the
	// set's observed p95 latency.
	Hedge bool
	// MinHedgeDelay / HedgeAfter tune the hedge trigger.
	MinHedgeDelay time.Duration
	HedgeAfter    int
	// Transport carries coordinator→shard requests; nil means
	// http.DefaultTransport. Tests and benches pass a
	// *netcluster.FaultInjector.
	Transport http.RoundTripper
}

// NetCoordinator is the client-facing node of a networked cluster,
// built from the same federation the shards loaded: it owns the shared
// encoder (queries are embedded exactly once, raw vectors fan out over
// the wire) and the global insertion order the merge tie-breaks on, and
// routes every search and mutation through a netcluster.Coordinator.
type NetCoordinator struct {
	coord  *netcluster.Coordinator
	cfg    NetCoordinatorConfig
	model  *embed.Model
	reg    *obs.Registry
	traces *obs.TraceStore
	slo    *obs.SLOEngine
	// orderMu guards order/nextOrder: mutations write, merges read.
	orderMu   sync.RWMutex
	order     map[string]int
	nextOrder int
}

// NewNetCoordinator builds a coordinator over replica sets:
// replicaSets[i] lists the base URLs of set i's members, each a shard
// server started with NewNetShard(fed, {Sets: len(replicaSets), Set: i}).
// fed must be the same federation (same relations, same insertion order)
// the shards partitioned, so encoder statistics and merge order agree.
func NewNetCoordinator(fed *Federation, replicaSets [][]string, cfg NetCoordinatorConfig) (*NetCoordinator, error) {
	if fed == nil || fed.Len() == 0 {
		return nil, fmt.Errorf("semdisco: empty federation")
	}
	idf := cfg.IDF
	if idf == nil {
		idf = statsIDF(federationStats(fed))
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	var reg *obs.Registry
	if !cfg.DisableMetrics {
		reg = obs.NewRegistry()
	}
	model.SetObserver(reg)

	order := make(map[string]int, fed.Len())
	for i, r := range fed.Relations() {
		order[r.ID] = i
	}
	nc := &NetCoordinator{
		cfg:       cfg,
		model:     model,
		reg:       reg,
		traces:    newTraceStore(cfg.Tracing),
		slo:       newSLOEngine(cfg.SLO, reg),
		order:     order,
		nextOrder: fed.Len(),
	}
	coord, err := netcluster.NewCoordinator(replicaSets, netcluster.CoordinatorOptions{
		Encode: model.Encode,
		Order: func(relID string) int {
			nc.orderMu.RLock()
			o, ok := nc.order[relID]
			nc.orderMu.RUnlock()
			if ok {
				return o
			}
			return int(^uint(0) >> 1) // unknown IDs tie-break last
		},
		Method:         cfg.Method.String(),
		Slack:          cfg.Slack,
		CacheSize:      cfg.CacheSize,
		Vnodes:         cfg.Vnodes,
		AttemptTimeout: cfg.AttemptTimeout,
		Hedge:          cfg.Hedge,
		MinHedgeDelay:  cfg.MinHedgeDelay,
		HedgeAfter:     cfg.HedgeAfter,
		Transport:      cfg.Transport,
		Registry:       reg,
		Traces:         nc.traces,
	})
	if err != nil {
		return nil, fmt.Errorf("semdisco: %w", err)
	}
	nc.coord = coord
	return nc, nil
}

// Search answers a query by networked scatter-gather over the replica
// sets. See SearchContext.
func (nc *NetCoordinator) Search(query string, k int) (*ClusterResult, error) {
	return nc.SearchContext(context.Background(), query, k)
}

// SearchContext encodes the query once, fans the raw vector out to one
// replica per set (with failover, hedging and per-attempt timeouts inside
// each set), and merges per-set answers bit-identically to the in-process
// cluster. A whole replica set failing degrades the Result; only every
// set failing — or ctx expiring — returns an error.
func (nc *NetCoordinator) SearchContext(ctx context.Context, query string, k int) (*ClusterResult, error) {
	start := time.Now()
	res, err := nc.coord.Search(ctx, query, k)
	nc.slo.Record(time.Since(start), err != nil || (res != nil && res.Degraded))
	return res, err
}

// SearchBatch answers a block of queries with one networked fan-out per
// replica set.
func (nc *NetCoordinator) SearchBatch(ctx context.Context, queries []Query) ([]*ClusterResult, error) {
	items := make([]cluster.BatchQuery, len(queries))
	for i, q := range queries {
		items[i] = cluster.BatchQuery{Query: q.Text, K: q.K}
	}
	start := time.Now()
	results, err := nc.coord.SearchBatch(ctx, items)
	failed := err != nil
	for _, r := range results {
		if r != nil && r.Degraded {
			failed = true
		}
	}
	nc.slo.Record(time.Since(start), failed)
	return results, err
}

// Add routes one new relation to its ring-owning set, ingesting it on
// every replica of that set, and appends it to the global merge order.
func (nc *NetCoordinator) Add(ctx context.Context, r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if err := nc.coord.Add(ctx, toWireRelation(r)); err != nil {
		return err
	}
	nc.orderMu.Lock()
	if _, ok := nc.order[r.ID]; !ok {
		nc.order[r.ID] = nc.nextOrder
		nc.nextOrder++
	}
	nc.orderMu.Unlock()
	return nil
}

// Delete tombstones a relation on every replica of its owning set.
func (nc *NetCoordinator) Delete(ctx context.Context, id string) error {
	if err := nc.coord.Delete(ctx, id); err != nil {
		return err
	}
	nc.orderMu.Lock()
	delete(nc.order, id)
	nc.orderMu.Unlock()
	return nil
}

// Update replaces a relation's contents on every replica of its owning
// set and moves it to the end of the global merge order, matching
// single-engine Update semantics.
func (nc *NetCoordinator) Update(ctx context.Context, r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if err := nc.coord.Update(ctx, toWireRelation(r)); err != nil {
		return err
	}
	nc.orderMu.Lock()
	nc.order[r.ID] = nc.nextOrder
	nc.nextOrder++
	nc.orderMu.Unlock()
	return nil
}

// toWireRelation converts a relation to its wire form for the write path.
func toWireRelation(r *Relation) netcluster.Relation {
	return netcluster.Relation{
		ID:           r.ID,
		Source:       r.Source,
		PageTitle:    r.PageTitle,
		SectionTitle: r.SectionTitle,
		Caption:      r.Caption,
		Columns:      r.Columns,
		Rows:         r.Rows,
	}
}

// Method reports the deployment's search strategy label.
func (nc *NetCoordinator) Method() Method { return nc.cfg.Method }

// NumSets reports the replica-set (partition) count.
func (nc *NetCoordinator) NumSets() int { return nc.coord.NumSets() }

// NumRelations reports the live relation count in the global merge order.
func (nc *NetCoordinator) NumRelations() int {
	nc.orderMu.RLock()
	defer nc.orderMu.RUnlock()
	return len(nc.order)
}

// Embed exposes the coordinator's encoder — the exact vectors it fans out.
func (nc *NetCoordinator) Embed(text string) []float32 { return nc.model.Encode(text) }

// Stats snapshots the coordinator's health: the federated router view plus
// each replica set's failover counters.
func (nc *NetCoordinator) Stats() netcluster.CoordinatorStats { return nc.coord.Stats() }

// MetricsRegistry exposes the coordinator's metrics registry (nil under
// Config.DisableMetrics; a nil registry is valid everywhere).
func (nc *NetCoordinator) MetricsRegistry() *obs.Registry { return nc.reg }

// Traces exposes the coordinator's tail-sampling trace store — retained
// federated span trees with every winning replica's remote spans grafted
// in. Nil when tracing is disabled.
func (nc *NetCoordinator) Traces() *obs.TraceStore { return nc.traces }

// SLO exposes the coordinator's burn-rate engine; nil when disabled.
func (nc *NetCoordinator) SLO() *obs.SLOEngine { return nc.slo }
