package semdisco

import (
	"time"

	"semdisco/internal/obs"
)

// TracingConfig tunes the span-tree tracing subsystem. Every search runs
// under a 128-bit trace ID with a root span and per-stage child spans; a
// tail-based store retains the traces whose outcome makes them worth a
// human's time — errors, degraded or hedged scatter-gathers, latency over
// the threshold — plus a 1-in-M head sample for baseline comparison. The
// zero value enables tracing with defaults (256-trace store, no latency
// criterion, head sample 1 in 64).
type TracingConfig struct {
	// Disable turns the subsystem off: searches stop minting trace IDs and
	// the trace store is not created. SearchTraced still returns stage
	// breakdowns (they ride on the diagnostics layer).
	Disable bool
	// StoreSize is the retained-trace ring capacity; default 256.
	StoreSize int
	// LatencyThreshold retains every trace whose request ran at least this
	// long. Zero disables the latency criterion; errors, degradation and
	// hedging still retain regardless.
	LatencyThreshold time.Duration
	// HeadSampleEvery keeps 1 in every M otherwise-uninteresting traces so
	// the store always holds healthy baselines. Zero selects the default of
	// 64; negative disables head sampling entirely.
	HeadSampleEvery int
}

// StoredTrace is one retained trace: the retention reason, the request
// summary and the complete span records. See obs.StoredTrace.
type StoredTrace = obs.StoredTrace

// StoredSpan is one completed span of a stored trace, positioned in the
// span tree by its ParentID. See obs.StoredSpan.
type StoredSpan = obs.StoredSpan

// newTraceStore builds the tail-sampling store for a config; nil when
// tracing is disabled.
func newTraceStore(tc TracingConfig) *obs.TraceStore {
	if tc.Disable {
		return nil
	}
	every := tc.HeadSampleEvery
	switch {
	case every == 0:
		every = 64
	case every < 0:
		every = 0
	}
	return obs.NewTraceStore(obs.TraceStoreConfig{
		Capacity:         tc.StoreSize,
		LatencyThreshold: tc.LatencyThreshold,
		HeadSampleEvery:  every,
	})
}

// Traces exposes the engine's tail-sampling trace store: retained span
// trees listable, fetchable by trace ID and exportable as JSON lines. Nil
// when tracing is disabled — and a nil *obs.TraceStore is a valid no-op
// everywhere.
func (e *Engine) Traces() *obs.TraceStore { return e.traces }

// ConfigureTracing replaces the engine's tracing subsystem, e.g. to apply
// a retention threshold to an engine restored with LoadEngine. Call it
// before serving traffic; it must not race with Search.
func (e *Engine) ConfigureTracing(tc TracingConfig) {
	e.traces = newTraceStore(tc)
}

// offerTrace submits a finished search trace to the store and, when it is
// retained, links the search-latency histogram's current bucket to it via
// an exemplar — so a p99 spike on /metrics resolves to a stored span tree.
func offerTrace(store *obs.TraceStore, reg *obs.Registry, metric string, tr *obs.Trace, o obs.TraceOutcome) {
	kept, _ := store.Offer(tr, o)
	if kept {
		reg.Histogram(metric).SetExemplar(o.Duration, tr.ID().String())
	}
}
