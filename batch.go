package semdisco

import (
	"context"
	"time"

	"semdisco/internal/cluster"
	"semdisco/internal/obs"
)

// Query is one item of a batched search: the query text and its result
// bound. Items with K ≤ 0 yield an empty answer without being scored.
type Query struct {
	Text string
	K    int
}

// BatchResult is one query's slice of a SearchBatch answer: the ranked
// matches plus the work accounting for that item. In-batch duplicates of
// the same (Text, K) share one scan; every duplicate still receives its own
// full Matches copy, with the cost charged once to the first occurrence.
type BatchResult struct {
	Matches []Match
	Cost    CostReport
}

// SearchBatch answers a block of queries in one fused pass over the index.
// Each distinct query text is encoded once (duplicate strings share the
// vector), and when the engine's method supports batched execution — all
// three do — the whole block is scored together: ExS runs a single blocked
// scan over the corpus reusing each value vector across every query of the
// batch, ANNS walks the graph per query over shared scratch state, and CTS
// deduplicates cluster probes across the batch.
//
// Results are positionally aligned with queries and, for ExS, bit-identical
// to issuing each query through Search — batching changes throughput, never
// answers. Cancellation via ctx aborts the whole batch with the context's
// error. Per-item costs also fold into a cost accumulator carried by ctx
// (see SearchCost), so batch work is visible to callers accounting at the
// request level.
func (e *Engine) SearchBatch(ctx context.Context, queries []Query) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()

	// Encode once per distinct text; duplicate strings — the common shape
	// under coalesced traffic — share one vector. Items with K ≤ 0 are
	// compacted out so the fused scan never scores them; active maps the
	// compacted block back to input positions.
	encoded := make(map[string][]float32, len(queries))
	var (
		active []int
		qs     [][]float32
		ks     []int
	)
	for i, q := range queries {
		if q.K <= 0 {
			continue
		}
		v, ok := encoded[q.Text]
		if !ok {
			v = e.model.Encode(q.Text)
			encoded[q.Text] = v
		}
		active = append(active, i)
		qs = append(qs, v)
		ks = append(ks, q.K)
	}

	costs := make([]*obs.Cost, len(qs))
	for i := range costs {
		costs[i] = &obs.Cost{}
	}

	ms := make([][]Match, len(queries))
	if len(qs) > 0 {
		rows, err := e.store.SearchEncodedBatch(ctx, qs, ks, costs)
		if err != nil {
			return nil, err
		}
		for s, i := range active {
			ms[i] = rows[s]
		}
	}

	dur := time.Since(start)
	perItem := dur / time.Duration(len(queries))
	parent := obs.CostFrom(ctx)
	method := e.Method().String()
	now := time.Now()
	out := make([]BatchResult, len(queries))
	for i := range queries {
		out[i] = BatchResult{Matches: ms[i]}
	}
	for s, i := range active {
		rep := costs[s].Report()
		out[i].Cost = rep
		if parent != nil {
			parent.AddReport(rep)
		}
		// Workload analytics see each batch item with its amortized share of
		// the batch latency — heavy-hitter and cost rankings stay meaningful
		// under batched traffic.
		e.workload.Record(queries[i].Text, method, "", rep, perItem, now)
		e.workload.RecordShard(0)
		e.slo.Record(perItem, false)
	}
	return out, nil
}

// SearchBatch answers a block of queries with one scatter-gather per shard:
// the router checks its result cache per item, encodes each distinct
// remaining query text once, deduplicates identical (Text, K) items inside
// the batch, and sends the whole encoded block to every shard in a single
// fan-out — one deadline and one hedge decision per shard for the block,
// not per query. Results are positionally aligned with queries; per-item
// degradation semantics match SearchContext, and coalesced duplicates are
// marked Result.Coalesced with their cost charged to the slot owner.
func (c *Cluster) SearchBatch(ctx context.Context, queries []Query) ([]*ClusterResult, error) {
	items := make([]cluster.BatchQuery, len(queries))
	for i, q := range queries {
		items[i] = cluster.BatchQuery{Query: q.Text, K: q.K}
	}
	return c.router.SearchBatch(ctx, items)
}
