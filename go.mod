module semdisco

go 1.22
