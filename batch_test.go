package semdisco

import (
	"context"
	"fmt"
	"testing"
)

// TestEngineSearchBatchMatchesSearch pins the public batch contract for
// every method: SearchBatch answers are identical to per-query Search —
// bit-identical for ExS — and skipped (K ≤ 0) items come back empty.
func TestEngineSearchBatchMatchesSearch(t *testing.T) {
	fed := synthFederation(t, 40)
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng, err := Open(fed, Config{Method: m, Dim: 64, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		queries := make([]Query, 10)
		for i := range queries {
			queries[i] = Query{Text: fmt.Sprintf("abc def %d", i%4), K: 1 + i%5}
		}
		queries[4].K = 0
		queries[7].K = -2

		results, err := eng.SearchBatch(context.Background(), queries)
		if err != nil {
			t.Fatalf("%v batch: %v", m, err)
		}
		if len(results) != len(queries) {
			t.Fatalf("%v: %d results for %d queries", m, len(results), len(queries))
		}
		for i, q := range queries {
			if q.K <= 0 {
				if len(results[i].Matches) != 0 {
					t.Errorf("%v item %d: skipped query got matches", m, i)
				}
				continue
			}
			want, err := eng.Search(q.Text, q.K)
			if err != nil {
				t.Fatalf("%v sequential: %v", m, err)
			}
			if len(results[i].Matches) != len(want) {
				t.Fatalf("%v item %d: %d matches vs %d sequential", m, i, len(results[i].Matches), len(want))
			}
			for j := range want {
				if results[i].Matches[j] != want[j] {
					t.Errorf("%v item %d match %d: %+v vs %+v", m, i, j, results[i].Matches[j], want[j])
				}
			}
			if m == ExS && results[i].Cost.DistanceComps == 0 {
				t.Errorf("%v item %d: no cost accounted", m, i)
			}
		}
	}
}

// TestEngineSearchBatchEmptyAndCancelled covers the trivial shapes.
func TestEngineSearchBatchEmptyAndCancelled(t *testing.T) {
	eng, err := Open(synthFederation(t, 10), Config{Method: ExS, Dim: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := eng.SearchBatch(context.Background(), nil); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SearchBatch(ctx, []Query{{Text: "abc", K: 3}}); err == nil {
		t.Fatal("dead context must fail the batch")
	}
}

// TestClusterSearchBatchMatchesSearch checks the federated batch facade:
// per-item answers equal SearchContext's, duplicates coalesce, cache hits
// ride along.
func TestClusterSearchBatchMatchesSearch(t *testing.T) {
	fed := synthFederation(t, 40)
	cfg := clusterCfg(4)
	cfg.CacheSize = 16
	cl, err := NewCluster(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Text: "abc def", K: 5},
		{Text: "ghi jkl", K: 3},
		{Text: "abc def", K: 5}, // in-batch duplicate
		{Text: "mno", K: 0},     // skipped
	}
	results, err := cl.SearchBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[3].Matches) != 0 {
		t.Error("k=0 item got matches")
	}
	if !results[2].Coalesced {
		t.Error("in-batch duplicate not coalesced")
	}
	for _, i := range []int{0, 1} {
		want, err := cl.SearchContext(context.Background(), queries[i].Text, queries[i].K)
		if err != nil {
			t.Fatal(err)
		}
		// The sequential comparison runs second, so it may hit the cache the
		// batch populated; matches must agree either way.
		if len(results[i].Matches) != len(want.Matches) {
			t.Fatalf("item %d: %d matches vs %d sequential", i, len(results[i].Matches), len(want.Matches))
		}
		for j := range want.Matches {
			if results[i].Matches[j] != want.Matches[j] {
				t.Errorf("item %d match %d: %+v vs %+v", i, j, results[i].Matches[j], want.Matches[j])
			}
		}
	}
	// A repeat batch should answer from the cluster cache.
	again, err := cl.SearchBatch(context.Background(), queries[:1])
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].CacheHit {
		t.Error("repeat batch item missed the cache")
	}
}
