// Command semdisco-bench regenerates the paper's tables and figures on the
// synthetic corpora.
//
// Usage:
//
//	semdisco-bench -table 1          # Table 1: long-query quality
//	semdisco-bench -table 4          # Table 4: CTS vs ANNS latency
//	semdisco-bench -figure 3         # Figure 3: all-method latency
//	semdisco-bench -all              # everything
//	semdisco-bench -corpus edp -all  # on the EDP-like corpus
//
// -scale shrinks or grows the corpus; -train fits the trainable baselines
// on the tuning pair split first (slower, higher baseline quality).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"semdisco/internal/corpus"
	"semdisco/internal/experiments"
)

func main() {
	var (
		corpusName = flag.String("corpus", "wikitables", "corpus profile: wikitables or edp")
		tableNo    = flag.Int("table", 0, "regenerate table 1, 2, 3 or 4")
		figureNo   = flag.Int("figure", 0, "regenerate figure 3")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		scale      = flag.Float64("scale", 1.0, "corpus scale factor")
		dim        = flag.Int("dim", 768, "embedding dimensionality (the paper's is 768)")
		seed       = flag.Int64("seed", 7, "random seed")
		train      = flag.Bool("train", true, "fit trainable baselines on the tuning split")
		workers    = flag.Int("workers", 0, "index-build worker count; 0 = GOMAXPROCS, 1 = serial deterministic build")
		caseStudy  = flag.Bool("casestudy", false, "run the §5.3 qualitative comparison")
		dumpRuns   = flag.String("dump-runs", "", "write per-method TREC run files (LD, all classes) into this directory")
		storage    = flag.Bool("storage", false, "report index storage and build cost per method")
		sweep      = flag.Bool("sweep", false, "run the scaling sweep (builds the methods at several corpus scales)")
		jsonOut    = flag.String("json", "", `write machine-readable results (build time, latency quantiles, MAP/NDCG) to this file; "-" for stdout`)
		shards     = flag.Int("shards", 0, "also benchmark a sharded scatter-gather federation with this many shards (adds a per-shard breakdown to -json)")
		tracingOH  = flag.Bool("tracing-overhead", false, "also measure span-tree tracing overhead on ExS p50 (adds a tracing section to -json)")
		costOut    = flag.Bool("cost", false, "also report per-method cost-model numbers (distance comps per query) and accounting overhead (adds a cost section to -json)")
		batchOut   = flag.Bool("batch", false, "also benchmark batched execution: 64-query fused batch vs sequential loop per method (adds a batch section to -json)")
		churnOut   = flag.Bool("churn", false, "also benchmark the mutable segment store: write throughput, search latency under churn, compaction pause (adds a churn section to -json)")
		netOut     = flag.Bool("netcluster", false, "also benchmark the networked cluster: loopback shard servers behind a replicated coordinator, equivalence + tail latency under stragglers and a killed replica (adds a netcluster section to -json)")
		netSets    = flag.Int("netcluster-sets", 2, "replica-set count for -netcluster")
		netReps    = flag.Int("netcluster-replicas", 2, "replicas per set for -netcluster")
	)
	flag.Parse()

	if !*all && *tableNo == 0 && *figureNo == 0 && !*caseStudy && *dumpRuns == "" && !*storage && !*sweep && *jsonOut == "" {
		flag.Usage()
		os.Exit(2)
	}

	var profile corpus.Profile
	switch *corpusName {
	case "wikitables":
		profile = corpus.WikiTables()
	case "edp":
		profile = corpus.EDP()
	default:
		fmt.Fprintf(os.Stderr, "unknown corpus %q\n", *corpusName)
		os.Exit(2)
	}
	profile = profile.Scaled(*scale)
	profile.Seed = *seed

	if *sweep {
		out, err := experiments.RunScalingSweep(profile, *dim, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if !*all && *tableNo == 0 && *figureNo == 0 && !*caseStudy && *dumpRuns == "" && !*storage && *jsonOut == "" {
			return
		}
	}

	fmt.Printf("building benchmark: corpus=%s relations=%d dim=%d train=%v\n",
		profile.Name, profile.NumRelations, *dim, *train)
	start := time.Now()
	bench, err := experiments.NewBench(experiments.Setup{
		Profile:        profile,
		Dim:            *dim,
		Seed:           *seed,
		TrainBaselines: *train,
		Workers:        *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "build failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("built in %v\n\n", time.Since(start).Round(time.Second))

	emit := func(out string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	tables := []int{}
	if *all {
		tables = []int{1, 2, 3, 4}
	} else if *tableNo != 0 {
		tables = []int{*tableNo}
	}
	for _, tn := range tables {
		switch tn {
		case 1, 2, 3:
			emit(bench.RunQualityTable(tn))
		case 4:
			emit(bench.RunTable4())
		default:
			fmt.Fprintf(os.Stderr, "no table %d\n", tn)
			os.Exit(2)
		}
	}
	if *all || *figureNo == 3 {
		emit(bench.RunFigure3())
	} else if *figureNo != 0 {
		fmt.Fprintf(os.Stderr, "no figure %d\n", *figureNo)
		os.Exit(2)
	}
	if *all || *caseStudy {
		q := bench.Corpus.QueriesOf(corpus.Moderate)[0]
		emit(bench.CaseStudy(q.Text, 5))
	}
	if *storage {
		emit(bench.RunStorageTable())
	}
	if *dumpRuns != "" {
		if err := os.MkdirAll(*dumpRuns, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		for _, method := range experiments.Methods {
			for _, class := range []corpus.QueryClass{corpus.Short, corpus.Moderate, corpus.Long} {
				name := fmt.Sprintf("%s-LD-%s.run", method, class)
				f, err := os.Create(filepath.Join(*dumpRuns, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "error: %v\n", err)
					os.Exit(1)
				}
				err = bench.WriteRun(f, method, "LD", class, 20)
				f.Close()
				if err != nil {
					fmt.Fprintf(os.Stderr, "error writing %s: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("wrote %d run files to %s\n", len(experiments.Methods)*3, *dumpRuns)
	}
	if *jsonOut != "" {
		report, err := bench.Report(20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if *shards > 0 {
			report.Cluster, err = bench.ClusterReport(*shards, 20)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("sharded federation: %d shards, ExS-equivalent=%v\n",
				report.Cluster.Shards, report.Cluster.EquivalentToExS)
		}
		if *tracingOH {
			report.Tracing, err = bench.TracingReport(20)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("tracing overhead: p50 %.3fms -> %.3fms (%.1f%%), %d traces kept\n",
				report.Tracing.BaselineP50MS, report.Tracing.TracedP50MS,
				report.Tracing.OverheadPct, report.Tracing.TracesKept)
		}
		if *costOut {
			report.Cost, err = bench.CostReport(20)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			for _, mc := range report.Cost.Methods {
				fmt.Printf("cost %s: %.0f distance comps/query, %.0f hops, %.0f pq lookups\n",
					mc.Method, mc.MeanDistanceComps, mc.MeanHNSWHops, mc.MeanPQLookups)
			}
			fmt.Printf("cost accounting overhead: p50 %.3fms -> %.3fms (%.1f%%)\n",
				report.Cost.BaselineP50MS, report.Cost.AccountedP50MS, report.Cost.OverheadPct)
		}
		if *batchOut {
			report.Batch, err = bench.BatchReport(20)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			for _, mb := range report.Batch.Methods {
				fmt.Printf("batch %s: %d queries, %.0f qps sequential -> %.0f qps batched (%.2fx), identical=%v\n",
					mb.Method, mb.Queries, mb.SequentialQPS, mb.BatchQPS, mb.Speedup, mb.Identical)
			}
		}
		if *churnOut {
			report.Churn, err = bench.ChurnReport(20)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			c := report.Churn
			fmt.Printf("churn: %d rels, %d deleted / %d updated / %d added (%.0f%% churn), %.0f write ops/s\n",
				c.Relations, c.Deleted, c.Updated, c.Added, c.ChurnFraction*100, c.WriteOpsPerSec)
			fmt.Printf("churn search p95: %.3fms quiet -> %.3fms under churn (%d samples); compaction pause %.1fms (%d seals, %d compactions), fresh-equivalent=%v\n",
				c.QuietLatency.P95MS, c.ChurnLatency.P95MS, c.ChurnSamples,
				c.CompactionPauseMS, c.Seals, c.Compactions, c.EquivalentToFresh)
		}
		if *netOut {
			report.Netcluster, err = bench.NetclusterReport(*netSets, *netReps, 20)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			nr := report.Netcluster
			fmt.Printf("netcluster: %d sets x %d replicas, exs-equivalent=%v router-equivalent=%v\n",
				nr.Sets, nr.Replicas, nr.EquivalentToExS, nr.EquivalentToRouter)
			fmt.Printf("netcluster p99: %.3fms in-process -> %.3fms wire -> %.3fms straggler (%d hedges, %d retries)\n",
				nr.InProcess.P99MS, nr.Healthy.P99MS, nr.Straggler.P99MS,
				nr.StragglerHedges, nr.StragglerRetries)
			fmt.Printf("netcluster replica kill: %d/%d answered (degraded=%d), all_answered=%v\n",
				nr.KilledAnswered, nr.KilledQueries, nr.KilledDegraded, nr.AllAnswered)
		}
		var out io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			// Tee to stdout so CI logs carry the report the file records.
			out = io.MultiWriter(f, os.Stdout)
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut != "-" {
			fmt.Printf("wrote JSON report to %s\n", *jsonOut)
		}
	}
}
