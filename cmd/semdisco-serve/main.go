// Command semdisco-serve hosts a discovery engine over HTTP.
//
// Usage:
//
//	semdisco-serve -dir ./tables -addr :8080           # index CSVs, serve
//	semdisco-serve -load engine.bin -addr :8080        # serve a saved engine
//	semdisco-serve -dir ./tables -pprof -log-format json
//
// The JSON API is documented in internal/httpapi. Only embeddings are
// held in the index, so serving it does not expose raw table contents
// beyond relation identifiers.
//
// Observability: every request is logged through log/slog (text by
// default, -log-format json for machine ingestion), engine and HTTP
// metrics are served at /metrics in Prometheus text format, and -pprof
// mounts the runtime profiler at /debug/pprof/.
//
// Diagnostics: /v1/debug/slow serves the slow-query log
// (-slowlog-threshold sets the retention floor), /v1/debug/journal the
// sampled exemplar traces (-trace-sample picks 1 in M queries),
// /v1/debug/index the index-health report, and /v1/debug/recall an
// on-demand recall probe; -recall-probe-interval probes periodically and
// exports semdisco_recall_at_k on /metrics.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"semdisco"
	"semdisco/internal/httpapi"
)

func main() {
	var (
		dir         = flag.String("dir", "", "directory of *.csv files to index")
		loadPath    = flag.String("load", "", "saved engine file (alternative to -dir)")
		addr        = flag.String("addr", ":8080", "listen address")
		method      = flag.String("method", "cts", "search method when indexing: cts, anns or exs")
		dim         = flag.Int("dim", 256, "embedding dimensionality when indexing")
		seed        = flag.Int64("seed", 1, "random seed")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")

		slowThreshold = flag.Duration("slowlog-threshold", 0,
			"retain only queries at least this slow in /v1/debug/slow (0 retains all)")
		traceSample = flag.Int("trace-sample", 0,
			"journal the full trace of 1 in every M queries (0 disables sampling)")
		probeInterval = flag.Duration("recall-probe-interval", 0,
			"probe recall@10 against an exhaustive scan this often (0 disables)")
	)
	flag.Parse()
	if *dir == "" && *loadPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown log format", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var (
		eng *semdisco.Engine
		err error
	)
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fatal(logger, "opening engine file", ferr)
		}
		eng, err = semdisco.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(logger, "loading engine", err)
		}
		logger.Info("engine loaded", "path", *loadPath,
			"method", eng.Method().String(),
			"relations", eng.NumRelations(), "values", eng.NumValues())
	} else {
		fed, ferr := semdisco.LoadDir(*dir)
		if ferr != nil {
			fatal(logger, "loading corpus", ferr)
		}
		var m semdisco.Method
		switch strings.ToLower(*method) {
		case "cts":
			m = semdisco.CTS
		case "anns":
			m = semdisco.ANNS
		case "exs":
			m = semdisco.ExS
		default:
			logger.Error("unknown method", "method", *method)
			os.Exit(1)
		}
		start := time.Now()
		eng, err = semdisco.Open(fed, semdisco.Config{Method: m, Dim: *dim, Seed: *seed})
		if err != nil {
			fatal(logger, "building index", err)
		}
		logger.Info("index built", "method", m.String(),
			"relations", eng.NumRelations(), "values", eng.NumValues(),
			"duration", time.Since(start).Round(time.Millisecond))
	}

	if *slowThreshold > 0 || *traceSample > 0 {
		// Re-arm diagnostics with the flag-driven settings; this also covers
		// the -load path, where the engine's config is not ours to set.
		eng.ConfigureDiagnostics(semdisco.DiagnosticsConfig{
			SlowLogThreshold: *slowThreshold,
			TraceSampleEvery: *traceSample,
		})
		logger.Info("diagnostics configured",
			"slowlog_threshold", *slowThreshold, "trace_sample", *traceSample)
	}

	opts := []httpapi.Option{httpapi.WithLogger(logger)}
	if *enablePprof {
		opts = append(opts, httpapi.WithPprof())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	api := httpapi.New(eng, opts...)
	if *probeInterval > 0 {
		done := make(chan struct{})
		defer close(done)
		api.StartRecallProbe(done, *probeInterval, 10)
		logger.Info("recall probe scheduled", "interval", *probeInterval, "k", 10)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("serving", "addr", *addr, "method", eng.Method().String())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, "server", err)
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "error", err)
	os.Exit(1)
}
