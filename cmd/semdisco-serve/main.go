// Command semdisco-serve hosts a discovery engine over HTTP.
//
// Usage:
//
//	semdisco-serve -dir ./tables -addr :8080           # index CSVs, serve
//	semdisco-serve -load engine.bin -addr :8080        # serve a saved engine
//
// The JSON API is documented in internal/httpapi. Only embeddings are
// held in the index, so serving it does not expose raw table contents
// beyond relation identifiers.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"semdisco"
	"semdisco/internal/httpapi"
)

func main() {
	var (
		dir      = flag.String("dir", "", "directory of *.csv files to index")
		loadPath = flag.String("load", "", "saved engine file (alternative to -dir)")
		addr     = flag.String("addr", ":8080", "listen address")
		method   = flag.String("method", "cts", "search method when indexing: cts, anns or exs")
		dim      = flag.Int("dim", 256, "embedding dimensionality when indexing")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *dir == "" && *loadPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		eng *semdisco.Engine
		err error
	)
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			log.Fatalf("semdisco-serve: %v", ferr)
		}
		eng, err = semdisco.LoadEngine(f)
		f.Close()
		if err != nil {
			log.Fatalf("semdisco-serve: loading engine: %v", err)
		}
	} else {
		fed, ferr := semdisco.LoadDir(*dir)
		if ferr != nil {
			log.Fatalf("semdisco-serve: %v", ferr)
		}
		var m semdisco.Method
		switch strings.ToLower(*method) {
		case "cts":
			m = semdisco.CTS
		case "anns":
			m = semdisco.ANNS
		case "exs":
			m = semdisco.ExS
		default:
			log.Fatalf("semdisco-serve: unknown method %q", *method)
		}
		start := time.Now()
		eng, err = semdisco.Open(fed, semdisco.Config{Method: m, Dim: *dim, Seed: *seed})
		if err != nil {
			log.Fatalf("semdisco-serve: building index: %v", err)
		}
		fmt.Printf("indexed %d values with %v in %v\n",
			eng.NumValues(), m, time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving %v engine on %s\n", eng.Method(), *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("semdisco-serve: %v", err)
	}
}
