// Command semdisco-serve hosts a discovery engine over HTTP.
//
// Usage:
//
//	semdisco-serve -dir ./tables -addr :8080           # index CSVs, serve
//	semdisco-serve -load engine.bin -addr :8080        # serve a saved engine
//	semdisco-serve -dir ./tables -shards 4 -shard-timeout 100ms -hedge
//	semdisco-serve -dir ./tables -pprof -log-format json
//
// With -shards N the corpus is partitioned into N shards behind an
// in-process scatter-gather router: queries fan out to all shards
// concurrently, -shard-timeout bounds each shard's work, -hedge races a
// retry against shards running past their p95, and a failed shard degrades
// the answer (response carries "degraded" and "shard_errors") instead of
// failing the query. /v1/stats then reports per-shard health. The
// engine-only debug endpoints respond 501 in cluster mode.
//
// Networked cluster: -role turns the process into one node of a wire-level
// deployment. A shard server
//
//	semdisco-serve -dir ./tables -role shard -sets 2 -set 0 -addr :8081
//
// loads the full corpus for encoder statistics but indexes only the
// relations the placement ring assigns to its set, and serves the internal
// encoded-search endpoints alongside the public API. Every replica of a
// set runs the identical command. A coordinator
//
//	semdisco-serve -dir ./tables -role coordinator \
//	    -peers "http://h1:8081,http://h2:8081;http://h3:8082,http://h4:8082" \
//	    -attempt-timeout 2s -hedge -addr :8080
//
// fronts those replica sets: -peers lists them (commas separate replicas
// within a set, semicolons separate sets; set i of the coordinator must be
// the servers started with -set i), queries are embedded once and raw
// vectors fan out with per-attempt timeouts, sequential failover and
// optional cross-replica hedging, and writes route to every replica of the
// ring-owning set.
//
// Shutdown: SIGINT/SIGTERM drains in-flight requests for up to -drain,
// stops the background compactor (-compact-interval) and recall-probe
// tickers, and — with -trace-flush — writes the retained trace store as
// JSON lines before exiting.
//
// The JSON API is documented in internal/httpapi. Only embeddings are
// held in the index, so serving it does not expose raw table contents
// beyond relation identifiers.
//
// Observability: every request is logged through log/slog (text by
// default, -log-format json for machine ingestion), engine and HTTP
// metrics are served at /metrics in Prometheus text format, and -pprof
// mounts the runtime profiler at /debug/pprof/.
//
// Diagnostics: /v1/debug/slow serves the slow-query log
// (-slowlog-threshold sets the retention floor), /v1/debug/journal the
// sampled exemplar traces (-trace-sample picks 1 in M queries),
// /v1/debug/index the index-health report, and /v1/debug/recall an
// on-demand recall probe; -recall-probe-interval probes periodically and
// exports semdisco_recall_at_k on /metrics.
//
// Tracing: every request runs under a W3C trace context (inbound
// traceparent headers are continued; X-Trace-Id / Traceparent /
// X-Request-Id are stamped on responses), and interesting traces — slow
// per -trace-threshold, degraded, hedged, errored, plus a 1-in-M head
// sample per -trace-head-sample — are retained in a -trace-store-sized
// ring served at /v1/debug/traces. Scrapes accepting OpenMetrics get
// histogram exemplars on /metrics linking latency buckets to stored trace
// IDs. -no-trace turns the subsystem off.
//
// Cost accounting and SLOs: every search response carries a "cost" block
// (distance computations, graph hops, PQ lookups, bytes scanned),
// /v1/debug/workload serves heavy-hitter queries and shard-load skew, and
// /v1/debug/slo serves multi-window error-budget burn rates.
// -slo-availability, -slo-latency-objective and -slo-latency-threshold set
// the objectives; -no-slo turns the SLO engine off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semdisco"
	"semdisco/internal/httpapi"
	"semdisco/internal/obs"
)

var (
	dir         = flag.String("dir", "", "directory of *.csv files to index")
	loadPath    = flag.String("load", "", "saved engine file (alternative to -dir)")
	addr        = flag.String("addr", ":8080", "listen address")
	method      = flag.String("method", "cts", "search method when indexing: cts, anns or exs")
	dim         = flag.Int("dim", 256, "embedding dimensionality when indexing")
	seed        = flag.Int64("seed", 1, "random seed")
	logFormat   = flag.String("log-format", "text", "log output format: text or json")
	enablePprof = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")

	slowThreshold = flag.Duration("slowlog-threshold", 0,
		"retain only queries at least this slow in /v1/debug/slow (0 retains all)")
	traceSample = flag.Int("trace-sample", 0,
		"journal the full trace of 1 in every M queries (0 disables sampling)")
	probeInterval = flag.Duration("recall-probe-interval", 0,
		"probe recall@10 against an exhaustive scan this often (0 disables)")

	noTrace = flag.Bool("no-trace", false,
		"disable span-tree tracing and the /v1/debug/traces store")
	traceStore = flag.Int("trace-store", 0,
		"retained-trace ring capacity (0 = default 256)")
	traceThreshold = flag.Duration("trace-threshold", 0,
		"retain every trace whose request ran at least this long (0 disables the latency criterion)")
	traceHeadSample = flag.Int("trace-head-sample", 0,
		"keep 1 in every M otherwise-uninteresting traces (0 = default 64, negative disables)")

	noSLO = flag.Bool("no-slo", false,
		"disable the SLO burn-rate engine and the /v1/debug/slo endpoint")
	sloAvailability = flag.Float64("slo-availability", 0,
		"availability objective as a fraction, e.g. 0.999 (0 = default 0.999)")
	sloLatencyObjective = flag.Float64("slo-latency-objective", 0,
		"latency objective as a fraction of requests under -slo-latency-threshold (0 = default 0.99)")
	sloLatencyThreshold = flag.Duration("slo-latency-threshold", 0,
		"latency objective cutoff (0 = default 500ms)")

	shards = flag.Int("shards", 0,
		"partition the corpus into this many shards behind an in-process scatter-gather router (0 = single engine)")
	shardTimeout = flag.Duration("shard-timeout", 0,
		"per-shard search deadline; timed-out shards degrade the answer (0 disables)")
	hedge = flag.Bool("hedge", false,
		"hedge a retry against shards (replicas in coordinator role) running past their observed p95 latency")
	cacheSize = flag.Int("cache", 0,
		"query-result cache entries (0 disables)")

	role = flag.String("role", "",
		"networked-cluster role: shard or coordinator (empty = standalone)")
	peers = flag.String("peers", "",
		"coordinator replica sets: commas separate replica URLs within a set, semicolons separate sets")
	setIdx = flag.Int("set", 0, "this shard server's replica-set index, in [0,-sets) (role=shard)")
	nSets  = flag.Int("sets", 0, "replica-set (partition) count of the deployment (role=shard)")
	vnodes = flag.Int("vnodes", 0,
		"placement-ring virtual nodes per set; must match across every node (0 = default)")
	attemptTimeout = flag.Duration("attempt-timeout", 0,
		"coordinator per-replica-attempt deadline; expired attempts fail over to the next replica (0 disables)")

	drain = flag.Duration("drain", 10*time.Second,
		"graceful-shutdown drain deadline for in-flight requests on SIGINT/SIGTERM")
	compactInterval = flag.Duration("compact-interval", 0,
		"background segment-compaction ticker (0 = mutation-driven compaction only)")
	traceFlush = flag.String("trace-flush", "",
		"write the retained trace store to this file as JSON lines on shutdown")
)

func main() {
	flag.Parse()
	if *dir == "" && *loadPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown log format", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var m semdisco.Method
	switch strings.ToLower(*method) {
	case "cts":
		m = semdisco.CTS
	case "anns":
		m = semdisco.ANNS
	case "exs":
		m = semdisco.ExS
	default:
		logger.Error("unknown method", "method", *method)
		os.Exit(1)
	}

	tracing := semdisco.TracingConfig{
		Disable:          *noTrace,
		StoreSize:        *traceStore,
		LatencyThreshold: *traceThreshold,
		HeadSampleEvery:  *traceHeadSample,
	}
	slo := semdisco.SLOConfig{
		Disable:          *noSLO,
		Availability:     *sloAvailability,
		LatencyObjective: *sloLatencyObjective,
		LatencyThreshold: *sloLatencyThreshold,
	}
	cfg := semdisco.Config{Method: m, Dim: *dim, Seed: *seed, Tracing: tracing, SLO: slo}
	cfg.Segments.CompactionInterval = *compactInterval

	switch *role {
	case "":
		// Standalone (or in-process cluster) below.
	case "shard":
		serveShard(logger, cfg)
		return
	case "coordinator":
		serveCoordinator(logger, cfg)
		return
	default:
		logger.Error("unknown role", "role", *role)
		os.Exit(2)
	}

	if *shards > 0 {
		serveCluster(logger, cfg)
		return
	}

	var (
		eng *semdisco.Engine
		err error
	)
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fatal(logger, "opening engine file", ferr)
		}
		eng, err = semdisco.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(logger, "loading engine", err)
		}
		eng.ConfigureTracing(tracing)
		eng.ConfigureSLO(slo)
		logger.Info("engine loaded", "path", *loadPath,
			"method", eng.Method().String(),
			"relations", eng.NumRelations(), "values", eng.NumValues())
	} else {
		fed, ferr := semdisco.LoadDir(*dir)
		if ferr != nil {
			fatal(logger, "loading corpus", ferr)
		}
		start := time.Now()
		eng, err = semdisco.Open(fed, cfg)
		if err != nil {
			fatal(logger, "building index", err)
		}
		logger.Info("index built", "method", m.String(),
			"relations", eng.NumRelations(), "values", eng.NumValues(),
			"duration", time.Since(start).Round(time.Millisecond))
	}
	serveEngine(logger, eng)
}

// serveShard builds one shard server of a networked cluster: full-corpus
// encoder statistics, partition-only index, internal encoded-search
// endpoints mounted by httpapi.New.
func serveShard(logger *slog.Logger, cfg semdisco.Config) {
	if *dir == "" {
		fatal(logger, "role shard", errors.New("-dir is required (the full corpus feeds the shared encoder statistics)"))
	}
	if *nSets < 1 {
		fatal(logger, "role shard", errors.New("-sets must be at least 1"))
	}
	fed, err := semdisco.LoadDir(*dir)
	if err != nil {
		fatal(logger, "loading corpus", err)
	}
	start := time.Now()
	eng, err := semdisco.NewNetShard(fed, semdisco.NetShardConfig{
		Config: cfg,
		Sets:   *nSets,
		Set:    *setIdx,
		Vnodes: *vnodes,
	})
	if err != nil {
		fatal(logger, "building shard", err)
	}
	logger.Info("shard built", "set", *setIdx, "sets", *nSets,
		"method", eng.Method().String(), "relations", eng.NumRelations(),
		"duration", time.Since(start).Round(time.Millisecond))
	serveEngine(logger, eng)
}

// serveCoordinator fronts the replica sets named by -peers.
func serveCoordinator(logger *slog.Logger, cfg semdisco.Config) {
	if *dir == "" {
		fatal(logger, "role coordinator", errors.New("-dir is required (the corpus derives encoder statistics and merge order)"))
	}
	replicaSets, err := parsePeers(*peers)
	if err != nil {
		fatal(logger, "role coordinator", err)
	}
	fed, err := semdisco.LoadDir(*dir)
	if err != nil {
		fatal(logger, "loading corpus", err)
	}
	nc, err := semdisco.NewNetCoordinator(fed, replicaSets, semdisco.NetCoordinatorConfig{
		Config:         cfg,
		CacheSize:      *cacheSize,
		Vnodes:         *vnodes,
		AttemptTimeout: *attemptTimeout,
		Hedge:          *hedge,
	})
	if err != nil {
		fatal(logger, "building coordinator", err)
	}
	opts := []httpapi.Option{httpapi.WithLogger(logger)}
	if *enablePprof {
		opts = append(opts, httpapi.WithPprof())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewCoordinator(nc, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	replicas := 0
	for _, set := range replicaSets {
		replicas += len(set)
	}
	logger.Info("serving coordinator", "addr", *addr,
		"sets", len(replicaSets), "replicas", replicas,
		"method", nc.Method().String(), "hedge", *hedge,
		"attempt_timeout", *attemptTimeout)
	serveHTTP(logger, srv, func() {
		flushTraces(logger, nc.Traces())
	})
}

// serveEngine serves one engine — standalone or one networked shard —
// with diagnostics, periodic probes, the background compactor and graceful
// shutdown wired up.
func serveEngine(logger *slog.Logger, eng *semdisco.Engine) {
	if *slowThreshold > 0 || *traceSample > 0 {
		// Re-arm diagnostics with the flag-driven settings; this also covers
		// the -load path, where the engine's config is not ours to set.
		eng.ConfigureDiagnostics(semdisco.DiagnosticsConfig{
			SlowLogThreshold: *slowThreshold,
			TraceSampleEvery: *traceSample,
		})
		logger.Info("diagnostics configured",
			"slowlog_threshold", *slowThreshold, "trace_sample", *traceSample)
	}

	opts := []httpapi.Option{httpapi.WithLogger(logger)}
	if *enablePprof {
		opts = append(opts, httpapi.WithPprof())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	api := httpapi.New(eng, opts...)

	done := make(chan struct{})
	if *probeInterval > 0 {
		api.StartRecallProbe(done, *probeInterval, 10)
		logger.Info("recall probe scheduled", "interval", *probeInterval, "k", 10)
	}
	var stopCompactor func()
	if *compactInterval > 0 {
		stopCompactor = eng.StartCompactor()
		logger.Info("compactor started", "interval", *compactInterval)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("serving", "addr", *addr, "method", eng.Method().String())
	serveHTTP(logger, srv, func() {
		close(done)
		if stopCompactor != nil {
			stopCompactor()
		}
		flushTraces(logger, eng.Traces())
	})
}

// serveCluster builds or loads an in-process sharded cluster and serves it.
func serveCluster(logger *slog.Logger, cfg semdisco.Config) {
	var (
		cl  *semdisco.Cluster
		err error
	)
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fatal(logger, "opening cluster file", ferr)
		}
		cl, err = semdisco.LoadCluster(f)
		f.Close()
		if err != nil {
			fatal(logger, "loading cluster", err)
		}
		cl.ConfigureTracing(cfg.Tracing)
		cl.ConfigureSLO(cfg.SLO)
		logger.Info("cluster loaded", "path", *loadPath,
			"method", cl.Method().String(),
			"shards", cl.NumShards(), "relations", cl.NumRelations())
	} else {
		fed, ferr := semdisco.LoadDir(*dir)
		if ferr != nil {
			fatal(logger, "loading corpus", ferr)
		}
		start := time.Now()
		cl, err = semdisco.NewCluster(fed, semdisco.ClusterConfig{
			Config:       cfg,
			Shards:       *shards,
			ShardTimeout: *shardTimeout,
			Hedge:        *hedge,
			CacheSize:    *cacheSize,
		})
		if err != nil {
			fatal(logger, "building cluster", err)
		}
		logger.Info("cluster built", "method", cfg.Method.String(),
			"shards", cl.NumShards(), "relations", cl.NumRelations(),
			"duration", time.Since(start).Round(time.Millisecond))
	}

	opts := []httpapi.Option{httpapi.WithLogger(logger)}
	if *enablePprof {
		opts = append(opts, httpapi.WithPprof())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewCluster(cl, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("serving cluster", "addr", *addr,
		"method", cl.Method().String(), "shards", cl.NumShards())
	serveHTTP(logger, srv, func() {
		flushTraces(logger, cl.Traces())
	})
}

// serveHTTP runs the server until it fails or SIGINT/SIGTERM arrives, then
// drains: the listener closes (new connections are refused), in-flight
// requests get up to -drain to finish, and onShutdown runs afterwards to
// stop background tickers and flush state. A drain overrun force-closes
// remaining connections rather than hanging the exit.
func serveHTTP(logger *slog.Logger, srv *http.Server, onShutdown func()) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(logger, "server", err)
		}
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		logger.Info("shutting down", "drain", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			logger.Warn("drain deadline exceeded; closing connections", "error", err)
			_ = srv.Close()
		}
	}
	if onShutdown != nil {
		onShutdown()
	}
	logger.Info("shutdown complete")
}

// flushTraces writes the retained trace store to -trace-flush as JSON
// lines, oldest first; a no-op without the flag or when tracing is off.
func flushTraces(logger *slog.Logger, store *obs.TraceStore) {
	if *traceFlush == "" || store == nil {
		return
	}
	f, err := os.Create(*traceFlush)
	if err != nil {
		logger.Error("flushing traces", "error", err)
		return
	}
	defer f.Close()
	if err := store.WriteJSONL(f); err != nil {
		logger.Error("flushing traces", "error", err)
		return
	}
	logger.Info("traces flushed", "path", *traceFlush, "kept", store.Kept())
}

// parsePeers splits "-peers" into replica sets: commas separate replica
// URLs within a set, semicolons separate sets.
func parsePeers(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-peers is required")
	}
	var sets [][]string
	for i, part := range strings.Split(s, ";") {
		var urls []string
		for _, u := range strings.Split(part, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			urls = append(urls, u)
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("replica set %d in -peers is empty", i)
		}
		sets = append(sets, urls)
	}
	return sets, nil
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "error", err)
	os.Exit(1)
}
