// Command semdisco-serve hosts a discovery engine over HTTP.
//
// Usage:
//
//	semdisco-serve -dir ./tables -addr :8080           # index CSVs, serve
//	semdisco-serve -load engine.bin -addr :8080        # serve a saved engine
//	semdisco-serve -dir ./tables -shards 4 -shard-timeout 100ms -hedge
//	semdisco-serve -dir ./tables -pprof -log-format json
//
// With -shards N the corpus is partitioned into N shards behind a
// scatter-gather router: queries fan out to all shards concurrently,
// -shard-timeout bounds each shard's work, -hedge races a retry against
// shards running past their p95, and a failed shard degrades the answer
// (response carries "degraded" and "shard_errors") instead of failing the
// query. /v1/stats then reports per-shard health. The engine-only debug
// endpoints respond 501 in cluster mode.
//
// The JSON API is documented in internal/httpapi. Only embeddings are
// held in the index, so serving it does not expose raw table contents
// beyond relation identifiers.
//
// Observability: every request is logged through log/slog (text by
// default, -log-format json for machine ingestion), engine and HTTP
// metrics are served at /metrics in Prometheus text format, and -pprof
// mounts the runtime profiler at /debug/pprof/.
//
// Diagnostics: /v1/debug/slow serves the slow-query log
// (-slowlog-threshold sets the retention floor), /v1/debug/journal the
// sampled exemplar traces (-trace-sample picks 1 in M queries),
// /v1/debug/index the index-health report, and /v1/debug/recall an
// on-demand recall probe; -recall-probe-interval probes periodically and
// exports semdisco_recall_at_k on /metrics.
//
// Tracing: every request runs under a W3C trace context (inbound
// traceparent headers are continued; X-Trace-Id / Traceparent /
// X-Request-Id are stamped on responses), and interesting traces — slow
// per -trace-threshold, degraded, hedged, errored, plus a 1-in-M head
// sample per -trace-head-sample — are retained in a -trace-store-sized
// ring served at /v1/debug/traces. Scrapes accepting OpenMetrics get
// histogram exemplars on /metrics linking latency buckets to stored trace
// IDs. -no-trace turns the subsystem off.
//
// Cost accounting and SLOs: every search response carries a "cost" block
// (distance computations, graph hops, PQ lookups, bytes scanned),
// /v1/debug/workload serves heavy-hitter queries and shard-load skew, and
// /v1/debug/slo serves multi-window error-budget burn rates.
// -slo-availability, -slo-latency-objective and -slo-latency-threshold set
// the objectives; -no-slo turns the SLO engine off.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"semdisco"
	"semdisco/internal/httpapi"
)

func main() {
	var (
		dir         = flag.String("dir", "", "directory of *.csv files to index")
		loadPath    = flag.String("load", "", "saved engine file (alternative to -dir)")
		addr        = flag.String("addr", ":8080", "listen address")
		method      = flag.String("method", "cts", "search method when indexing: cts, anns or exs")
		dim         = flag.Int("dim", 256, "embedding dimensionality when indexing")
		seed        = flag.Int64("seed", 1, "random seed")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")

		slowThreshold = flag.Duration("slowlog-threshold", 0,
			"retain only queries at least this slow in /v1/debug/slow (0 retains all)")
		traceSample = flag.Int("trace-sample", 0,
			"journal the full trace of 1 in every M queries (0 disables sampling)")
		probeInterval = flag.Duration("recall-probe-interval", 0,
			"probe recall@10 against an exhaustive scan this often (0 disables)")

		noTrace = flag.Bool("no-trace", false,
			"disable span-tree tracing and the /v1/debug/traces store")
		traceStore = flag.Int("trace-store", 0,
			"retained-trace ring capacity (0 = default 256)")
		traceThreshold = flag.Duration("trace-threshold", 0,
			"retain every trace whose request ran at least this long (0 disables the latency criterion)")
		traceHeadSample = flag.Int("trace-head-sample", 0,
			"keep 1 in every M otherwise-uninteresting traces (0 = default 64, negative disables)")

		noSLO = flag.Bool("no-slo", false,
			"disable the SLO burn-rate engine and the /v1/debug/slo endpoint")
		sloAvailability = flag.Float64("slo-availability", 0,
			"availability objective as a fraction, e.g. 0.999 (0 = default 0.999)")
		sloLatencyObjective = flag.Float64("slo-latency-objective", 0,
			"latency objective as a fraction of requests under -slo-latency-threshold (0 = default 0.99)")
		sloLatencyThreshold = flag.Duration("slo-latency-threshold", 0,
			"latency objective cutoff (0 = default 500ms)")

		shards = flag.Int("shards", 0,
			"partition the corpus into this many shards behind a scatter-gather router (0 = single engine)")
		shardTimeout = flag.Duration("shard-timeout", 0,
			"per-shard search deadline; timed-out shards degrade the answer (0 disables)")
		hedge = flag.Bool("hedge", false,
			"hedge a retry against shards running past their observed p95 latency")
		cacheSize = flag.Int("cache", 0,
			"cluster query-result cache entries (0 disables)")
	)
	flag.Parse()
	if *dir == "" && *loadPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown log format", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var m semdisco.Method
	switch strings.ToLower(*method) {
	case "cts":
		m = semdisco.CTS
	case "anns":
		m = semdisco.ANNS
	case "exs":
		m = semdisco.ExS
	default:
		logger.Error("unknown method", "method", *method)
		os.Exit(1)
	}

	tracing := semdisco.TracingConfig{
		Disable:          *noTrace,
		StoreSize:        *traceStore,
		LatencyThreshold: *traceThreshold,
		HeadSampleEvery:  *traceHeadSample,
	}
	slo := semdisco.SLOConfig{
		Disable:          *noSLO,
		Availability:     *sloAvailability,
		LatencyObjective: *sloLatencyObjective,
		LatencyThreshold: *sloLatencyThreshold,
	}

	if *shards > 0 {
		serveCluster(logger, m, *dir, *loadPath, *addr, *dim, *seed,
			*shards, *shardTimeout, *hedge, *cacheSize, *enablePprof, tracing, slo)
		return
	}

	var (
		eng *semdisco.Engine
		err error
	)
	if *loadPath != "" {
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			fatal(logger, "opening engine file", ferr)
		}
		eng, err = semdisco.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(logger, "loading engine", err)
		}
		eng.ConfigureTracing(tracing)
		eng.ConfigureSLO(slo)
		logger.Info("engine loaded", "path", *loadPath,
			"method", eng.Method().String(),
			"relations", eng.NumRelations(), "values", eng.NumValues())
	} else {
		fed, ferr := semdisco.LoadDir(*dir)
		if ferr != nil {
			fatal(logger, "loading corpus", ferr)
		}
		start := time.Now()
		eng, err = semdisco.Open(fed, semdisco.Config{Method: m, Dim: *dim, Seed: *seed, Tracing: tracing, SLO: slo})
		if err != nil {
			fatal(logger, "building index", err)
		}
		logger.Info("index built", "method", m.String(),
			"relations", eng.NumRelations(), "values", eng.NumValues(),
			"duration", time.Since(start).Round(time.Millisecond))
	}

	if *slowThreshold > 0 || *traceSample > 0 {
		// Re-arm diagnostics with the flag-driven settings; this also covers
		// the -load path, where the engine's config is not ours to set.
		eng.ConfigureDiagnostics(semdisco.DiagnosticsConfig{
			SlowLogThreshold: *slowThreshold,
			TraceSampleEvery: *traceSample,
		})
		logger.Info("diagnostics configured",
			"slowlog_threshold", *slowThreshold, "trace_sample", *traceSample)
	}

	opts := []httpapi.Option{httpapi.WithLogger(logger)}
	if *enablePprof {
		opts = append(opts, httpapi.WithPprof())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	api := httpapi.New(eng, opts...)
	if *probeInterval > 0 {
		done := make(chan struct{})
		defer close(done)
		api.StartRecallProbe(done, *probeInterval, 10)
		logger.Info("recall probe scheduled", "interval", *probeInterval, "k", 10)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("serving", "addr", *addr, "method", eng.Method().String())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, "server", err)
	}
}

// serveCluster builds or loads a sharded cluster and serves it.
func serveCluster(logger *slog.Logger, m semdisco.Method, dir, loadPath, addr string,
	dim int, seed int64, shards int, shardTimeout time.Duration, hedge bool,
	cacheSize int, enablePprof bool, tracing semdisco.TracingConfig, slo semdisco.SLOConfig) {
	var (
		cl  *semdisco.Cluster
		err error
	)
	if loadPath != "" {
		f, ferr := os.Open(loadPath)
		if ferr != nil {
			fatal(logger, "opening cluster file", ferr)
		}
		cl, err = semdisco.LoadCluster(f)
		f.Close()
		if err != nil {
			fatal(logger, "loading cluster", err)
		}
		cl.ConfigureTracing(tracing)
		cl.ConfigureSLO(slo)
		logger.Info("cluster loaded", "path", loadPath,
			"method", cl.Method().String(),
			"shards", cl.NumShards(), "relations", cl.NumRelations())
	} else {
		fed, ferr := semdisco.LoadDir(dir)
		if ferr != nil {
			fatal(logger, "loading corpus", ferr)
		}
		start := time.Now()
		cl, err = semdisco.NewCluster(fed, semdisco.ClusterConfig{
			Config:       semdisco.Config{Method: m, Dim: dim, Seed: seed, Tracing: tracing, SLO: slo},
			Shards:       shards,
			ShardTimeout: shardTimeout,
			Hedge:        hedge,
			CacheSize:    cacheSize,
		})
		if err != nil {
			fatal(logger, "building cluster", err)
		}
		logger.Info("cluster built", "method", m.String(),
			"shards", cl.NumShards(), "relations", cl.NumRelations(),
			"duration", time.Since(start).Round(time.Millisecond))
	}

	opts := []httpapi.Option{httpapi.WithLogger(logger)}
	if enablePprof {
		opts = append(opts, httpapi.WithPprof())
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           httpapi.NewCluster(cl, opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("serving cluster", "addr", addr,
		"method", cl.Method().String(), "shards", cl.NumShards())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, "server", err)
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "error", err)
	os.Exit(1)
}
