// Command semdisco-datagen materializes a synthetic evaluation corpus to
// disk: one CSV per relation, a queries file and a qrels file in the
// standard TREC format, so the corpus can be inspected or consumed by
// external tooling.
//
// Usage:
//
//	semdisco-datagen -out ./corpus [-profile wikitables] [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"semdisco/internal/corpus"
)

func main() {
	var (
		out         = flag.String("out", "", "output directory (required)")
		profileName = flag.String("profile", "wikitables", "corpus profile: wikitables or edp")
		scale       = flag.Float64("scale", 1.0, "corpus scale factor")
		seed        = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var p corpus.Profile
	switch *profileName {
	case "wikitables":
		p = corpus.WikiTables()
	case "edp":
		p = corpus.EDP()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileName)
		os.Exit(2)
	}
	p = p.Scaled(*scale)
	p.Seed = *seed
	c := corpus.Generate(p)

	tablesDir := filepath.Join(*out, "tables")
	if err := os.MkdirAll(tablesDir, 0o755); err != nil {
		fatal("%v", err)
	}
	for _, r := range c.Federation.Relations() {
		f, err := os.Create(filepath.Join(tablesDir, r.ID+".csv"))
		if err != nil {
			fatal("%v", err)
		}
		if err := r.WriteCSV(f); err != nil {
			fatal("writing %s: %v", r.ID, err)
		}
		f.Close()
	}

	qf, err := os.Create(filepath.Join(*out, "queries.tsv"))
	if err != nil {
		fatal("%v", err)
	}
	for _, q := range c.Queries {
		fmt.Fprintf(qf, "%s\t%s\t%s\n", q.ID, q.Class, q.Text)
	}
	qf.Close()

	rf, err := os.Create(filepath.Join(*out, "qrels.txt"))
	if err != nil {
		fatal("%v", err)
	}
	for _, qid := range c.Qrels.Queries() {
		judged := c.Qrels[qid]
		rels := make([]string, 0, len(judged))
		for rel := range judged {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			fmt.Fprintf(rf, "%s 0 %s %d\n", qid, rel, judged[rel])
		}
	}
	rf.Close()

	fmt.Printf("wrote %d tables, %d queries, qrels to %s\n",
		c.Federation.Len(), len(c.Queries), *out)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "semdisco-datagen: "+format+"\n", args...)
	os.Exit(1)
}
