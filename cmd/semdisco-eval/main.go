// Command semdisco-eval scores a ranked run against relevance judgments
// with the paper's metric battery (MAP, MRR, NDCG@{5,10,15,20}) and,
// given a second run, tests the MAP difference for statistical
// significance with a paired randomization test.
//
// Usage:
//
//	semdisco-eval -qrels qrels.txt -run run.txt
//	semdisco-eval -qrels qrels.txt -run a.txt -run2 b.txt
//
// File formats are TREC: qrels lines are "qid 0 docid grade"; run lines
// are "qid Q0 docid rank score tag" (a 4-field variant is accepted).
// cmd/semdisco-datagen emits a compatible qrels file.
package main

import (
	"flag"
	"fmt"
	"os"

	"semdisco/internal/eval"
)

func main() {
	var (
		qrelsPath = flag.String("qrels", "", "TREC qrels file (required)")
		runPath   = flag.String("run", "", "TREC run file (required)")
		run2Path  = flag.String("run2", "", "second run for a significance test")
		perQuery  = flag.Bool("per-query", false, "also print per-query AP")
		rounds    = flag.Int("rounds", 10000, "randomization rounds for the significance test")
		seed      = flag.Int64("seed", 1, "randomization seed")
	)
	flag.Parse()
	if *qrelsPath == "" || *runPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	qrels := mustQrels(*qrelsPath)
	run := mustRun(*runPath)

	rep := eval.Evaluate(qrels, run)
	fmt.Printf("queries: %d\n", rep.Queries)
	fmt.Printf("MAP:     %.4f\n", rep.MAP)
	fmt.Printf("MRR:     %.4f\n", rep.MRR)
	for _, k := range eval.Cutoffs {
		fmt.Printf("NDCG@%-2d: %.4f\n", k, rep.NDCG[k])
	}
	if *perQuery {
		for _, q := range qrels.Queries() {
			fmt.Printf("  %-24s AP=%.4f RR=%.4f\n", q,
				eval.AveragePrecision(qrels[q], run[q]),
				eval.ReciprocalRank(qrels[q], run[q]))
		}
	}

	if *run2Path != "" {
		run2 := mustRun(*run2Path)
		rep2 := eval.Evaluate(qrels, run2)
		diff, p := eval.Significance(qrels, run, run2, eval.APMetric, *rounds, *seed)
		fmt.Printf("\nrun2 MAP: %.4f\n", rep2.MAP)
		fmt.Printf("ΔMAP (run − run2): %+.4f, p = %.4f (paired randomization, %d rounds)\n",
			diff, p, *rounds)
		if p < 0.05 {
			fmt.Println("difference is significant at α = 0.05")
		} else {
			fmt.Println("difference is NOT significant at α = 0.05")
		}
	}
}

func mustQrels(path string) eval.Qrels {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	qrels, err := eval.ParseQrels(f)
	if err != nil {
		fatal("%v", err)
	}
	return qrels
}

func mustRun(path string) eval.Run {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	run, err := eval.ParseRun(f)
	if err != nil {
		fatal("%v", err)
	}
	return run
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "semdisco-eval: "+format+"\n", args...)
	os.Exit(1)
}
