// Command semdisco searches a directory of CSV tables by semantic matching.
//
// Usage:
//
//	semdisco -dir ./tables -q "covid vaccines europe" [-method cts] [-k 10]
//
// Every *.csv file in -dir becomes one relation (first record is the
// header). The index is built in-process on startup; with -interactive the
// command then reads one query per line from stdin. -save persists the
// built engine and -load restores one instead of re-indexing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semdisco"
)

func main() {
	var (
		dir         = flag.String("dir", "", "directory of *.csv files to index (required)")
		query       = flag.String("q", "", "keyword query")
		method      = flag.String("method", "cts", "search method: cts, anns or exs")
		k           = flag.Int("k", 10, "number of results")
		dim         = flag.Int("dim", 256, "embedding dimensionality")
		seed        = flag.Int64("seed", 1, "random seed for deterministic indexing")
		threshold   = flag.Float64("h", 0, "similarity threshold (paper's h)")
		interactive = flag.Bool("interactive", false, "read queries from stdin after indexing")
		savePath    = flag.String("save", "", "write the built engine to this file")
		loadPath    = flag.String("load", "", "restore an engine from this file instead of indexing -dir")
	)
	flag.Parse()
	if (*dir == "" && *loadPath == "") || (*query == "" && !*interactive && *savePath == "") {
		flag.Usage()
		os.Exit(2)
	}

	var eng *semdisco.Engine
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal("%v", err)
		}
		start := time.Now()
		eng, err = semdisco.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal("loading engine: %v", err)
		}
		fmt.Printf("restored %v engine (%d values) in %v\n",
			eng.Method(), eng.NumValues(), time.Since(start).Round(time.Millisecond))
	} else {
		fed, err := semdisco.LoadDir(*dir)
		if err != nil {
			fatal("loading %s: %v", *dir, err)
		}
		if fed.Len() == 0 {
			fatal("no CSV tables found in %s", *dir)
		}
		fmt.Printf("loaded %d relations from %s\n", fed.Len(), *dir)

		var m semdisco.Method
		switch strings.ToLower(*method) {
		case "cts":
			m = semdisco.CTS
		case "anns":
			m = semdisco.ANNS
		case "exs":
			m = semdisco.ExS
		default:
			fatal("unknown method %q (want cts, anns or exs)", *method)
		}

		start := time.Now()
		eng, err = semdisco.Open(fed, semdisco.Config{
			Method:    m,
			Dim:       *dim,
			Seed:      *seed,
			Threshold: float32(*threshold),
		})
		if err != nil {
			fatal("building index: %v", err)
		}
		fmt.Printf("indexed %d values with %v in %v\n", eng.NumValues(), m, time.Since(start).Round(time.Millisecond))
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal("%v", err)
		}
		if err := eng.Save(f); err != nil {
			fatal("saving engine: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("saving engine: %v", err)
		}
		fmt.Printf("saved engine to %s\n", *savePath)
	}

	if *query != "" {
		runQuery(eng, *query, *k)
	}
	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("query> ")
		for sc.Scan() {
			q := strings.TrimSpace(sc.Text())
			if q != "" {
				runQuery(eng, q, *k)
			}
			fmt.Print("query> ")
		}
	}
}

func runQuery(eng *semdisco.Engine, q string, k int) {
	start := time.Now()
	matches, err := eng.Search(q, k)
	if err != nil {
		fatal("search: %v", err)
	}
	elapsed := time.Since(start)
	if len(matches) == 0 {
		fmt.Println("no matches")
		return
	}
	for i, m := range matches {
		fmt.Printf("%2d. %-30s %.4f\n", i+1, m.RelationID, m.Score)
	}
	fmt.Printf("(%d matches in %v)\n", len(matches), elapsed.Round(time.Microsecond))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "semdisco: "+format+"\n", args...)
	os.Exit(1)
}
