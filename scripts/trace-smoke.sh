#!/bin/sh
# trace-smoke: end-to-end check of the tracing subsystem against a real
# server. Generates a small corpus, serves it as a 4-shard hedged cluster
# with every trace retained, runs one search, and asserts that:
#
#   1. the response body and X-Trace-Id header carry the same trace ID,
#   2. /v1/debug/traces/{id} returns the stored span tree with a
#      cluster_search root and one shard span per shard under scatter,
#   3. the OpenMetrics scrape carries an exemplar naming that trace ID.
#
# Needs curl and jq. Pass PORT to override the default 18080.
set -eu

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== generating corpus"
go run ./cmd/semdisco-datagen -out "$TMP/corpus" -scale 0.05 -seed 7

echo "== starting 4-shard server on :$PORT"
go build -o "$TMP/semdisco-serve" ./cmd/semdisco-serve
"$TMP/semdisco-serve" -dir "$TMP/corpus/tables" -method exs -dim 96 \
    -addr "127.0.0.1:$PORT" -shards 4 -hedge -shard-timeout 500ms \
    -trace-head-sample 1 >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

up=""
for _ in $(seq 1 150); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then break; fi
    sleep 0.2
done
if [ -z "$up" ]; then
    echo "FAIL: server did not come up" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi

echo "== running traced search"
HDRS="$TMP/headers.txt"
RESP="$(curl -sf -D "$HDRS" -H 'Content-Type: application/json' \
    -d '{"query":"population of european countries","k":5}' "$BASE/v1/search")"
TRACE_ID="$(printf '%s' "$RESP" | jq -r '.trace_id')"
case "$TRACE_ID" in
    ????????????????????????????????) ;;
    *) echo "FAIL: response trace_id is not a 32-hex trace ID: '$TRACE_ID'" >&2; exit 1 ;;
esac
HDR_ID="$(tr -d '\r' <"$HDRS" | awk -F': ' 'tolower($1)=="x-trace-id"{print $2}')"
if [ "$HDR_ID" != "$TRACE_ID" ]; then
    echo "FAIL: X-Trace-Id header '$HDR_ID' != body trace_id '$TRACE_ID'" >&2
    exit 1
fi

echo "== fetching stored span tree for $TRACE_ID"
TRACE="$(curl -sf "$BASE/v1/debug/traces/$TRACE_ID")"
ROOT_NAME="$(printf '%s' "$TRACE" | jq -r '.tree[0].name')"
if [ "$ROOT_NAME" != "cluster_search" ]; then
    echo "FAIL: span tree root is '$ROOT_NAME', want cluster_search" >&2
    printf '%s\n' "$TRACE" >&2
    exit 1
fi
for stage in encode scatter merge; do
    if ! printf '%s' "$TRACE" | jq -e --arg n "$stage" \
        '.tree[0].children[] | select(.name == $n)' >/dev/null; then
        echo "FAIL: span tree missing '$stage' under the root" >&2
        printf '%s\n' "$TRACE" >&2
        exit 1
    fi
done
SHARD_SPANS="$(printf '%s' "$TRACE" | jq '[.tree[0].children[]
    | select(.name == "scatter")][0].children
    | map(select(.name == "shard")) | length')"
if [ "$SHARD_SPANS" -lt 4 ]; then
    echo "FAIL: scatter has $SHARD_SPANS shard spans, want >= 4" >&2
    printf '%s\n' "$TRACE" >&2
    exit 1
fi

echo "== checking OpenMetrics exemplar"
if ! curl -sf -H 'Accept: application/openmetrics-text' "$BASE/metrics" \
    | grep -q "trace_id=\"$TRACE_ID\""; then
    echo "FAIL: no exemplar for trace $TRACE_ID on the OpenMetrics scrape" >&2
    exit 1
fi

echo "trace-smoke OK: trace $TRACE_ID stored with $SHARD_SPANS shard spans"
