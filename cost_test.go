package semdisco

import (
	"context"
	"fmt"
	"testing"
)

// syntheticFederation builds rels relations of rows rows × 2 columns whose
// cell values are all unique, so the embedded value count is exactly
// rels·rows·2 and the ExS cost formula is checkable against NumValues.
func syntheticFederation(t testing.TB, rels, rows int) *Federation {
	t.Helper()
	fed := NewFederation()
	for r := 0; r < rels; r++ {
		rel := &Relation{
			ID:      fmt.Sprintf("rel%03d", r),
			Source:  fmt.Sprintf("src%d", r%4),
			Columns: []string{"A", "B"},
		}
		for i := 0; i < rows; i++ {
			rel.Rows = append(rel.Rows, []string{
				fmt.Sprintf("alpha%d beta%d", r*1000+i, r),
				fmt.Sprintf("gamma%d delta%d", r*1000+i, i),
			})
		}
		if err := fed.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	return fed
}

// TestSearchCostExSFormula pins the exhaustive scan's cost to its exact
// formula: one distance computation per indexed value, every query.
func TestSearchCostExSFormula(t *testing.T) {
	fed := syntheticFederation(t, 40, 5)
	eng, err := Open(fed, Config{Method: ExS, Dim: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	matches, rep, err := eng.SearchCost(context.Background(), "alpha1002 beta1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	want := int64(eng.NumValues())
	if want == 0 {
		t.Fatal("no values indexed")
	}
	if rep.DistanceComps != want {
		t.Fatalf("ExS DistanceComps = %d, want exactly NumValues = %d", rep.DistanceComps, want)
	}
	if rep.ValuesScanned != want {
		t.Fatalf("ExS ValuesScanned = %d, want %d", rep.ValuesScanned, want)
	}
	if rep.BytesScanned != want*64*4 {
		t.Fatalf("ExS BytesScanned = %d, want %d", rep.BytesScanned, want*64*4)
	}
	if rep.CandidatesGenerated == 0 {
		t.Fatal("ExS reported no candidates generated")
	}
}

// TestSearchCostANNSBelowExS asserts the point of the index: on the same
// corpus, the HNSW walk touches strictly fewer vectors than the exhaustive
// scan, and the walk's work is visible (nonzero hops).
func TestSearchCostANNSBelowExS(t *testing.T) {
	fed := syntheticFederation(t, 40, 5)
	exs, err := Open(fed, Config{Method: ExS, Dim: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, exsRep, err := exs.SearchCost(context.Background(), "alpha1002 beta1", 5)
	if err != nil {
		t.Fatal(err)
	}
	anns, err := Open(fed, Config{Method: ANNS, Dim: 64, Seed: 1,
		ANNS: ANNSOptions{DisablePQ: true, EfSearch: 16, Fanout: 16}})
	if err != nil {
		t.Fatal(err)
	}
	_, annsRep, err := anns.SearchCost(context.Background(), "alpha1002 beta1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if annsRep.DistanceComps == 0 {
		t.Fatal("ANNS reported zero distance computations")
	}
	if annsRep.HNSWHops == 0 {
		t.Fatal("ANNS reported zero HNSW hops")
	}
	if annsRep.DistanceComps >= exsRep.DistanceComps {
		t.Fatalf("ANNS DistanceComps = %d, want < ExS's %d", annsRep.DistanceComps, exsRep.DistanceComps)
	}
}

// TestSearchCostCTSNonzero asserts CTS accounts its medoid scan and
// per-cluster index walks.
func TestSearchCostCTSNonzero(t *testing.T) {
	fed := vaccineFederation(t)
	eng, err := Open(fed, Config{Method: CTS, Dim: 128, Seed: 1,
		Lexicon: vaccineLexicon(),
		CTS:     CTSOptions{MinClusterSize: 4, UMAPEpochs: 60}})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := eng.SearchCost(context.Background(), "COVID", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistanceComps == 0 {
		t.Fatal("CTS reported zero distance computations")
	}
}

// TestSearchRecordsWorkloadAndSLO asserts a plain engine search feeds the
// workload analyzer and the SLO engine.
func TestSearchRecordsWorkloadAndSLO(t *testing.T) {
	eng, err := Open(vaccineFederation(t), Config{Method: ExS, Dim: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Search("covid vaccines", 2); err != nil {
			t.Fatal(err)
		}
	}
	ws := eng.Workload().Snapshot()
	if ws.Queries != 3 {
		t.Fatalf("workload saw %d queries, want 3", ws.Queries)
	}
	if len(ws.HeavyHitters) == 0 || ws.HeavyHitters[0].Query != "covid vaccines" {
		t.Fatalf("heavy hitters = %+v", ws.HeavyHitters)
	}
	if len(ws.Costliest) == 0 || ws.Costliest[0].Cost.DistanceComps == 0 {
		t.Fatalf("costliest board = %+v", ws.Costliest)
	}
	ss := eng.SLO().Snapshot()
	if len(ss.Objectives) != 2 {
		t.Fatalf("SLO objectives = %+v", ss.Objectives)
	}
	for _, o := range ss.Objectives {
		if o.State != "ok" {
			t.Fatalf("objective %s state %q, want ok", o.Objective, o.State)
		}
		if o.Windows[0].Total != 3 {
			t.Fatalf("objective %s 5m window total %d, want 3", o.Objective, o.Windows[0].Total)
		}
	}
	// Disabling works and is honest at the accessor level.
	eng.ConfigureSLO(SLOConfig{Disable: true})
	if eng.SLO() != nil {
		t.Fatal("ConfigureSLO(Disable) left a live SLO engine")
	}
}
