package semdisco

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"semdisco/internal/core"
	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/text"
)

// Add indexes one more relation without rebuilding the engine. For CTS the
// relation's values join existing clusters (nearest medoid); after heavy
// growth, rebuild with Open to re-optimize the clustering. Add must not
// race with Search.
func (e *Engine) Add(r *Relation) error {
	app, ok := e.searcher.(core.Appender)
	if !ok {
		return fmt.Errorf("semdisco: %v does not support incremental adds", e.Method())
	}
	if err := app.AddRelation(r); err != nil {
		return err
	}
	e.relSource[r.ID] = r.Source
	return nil
}

// Contribution is one value's share of a match, as reported by Explain.
type Contribution = core.Contribution

// Explanation decomposes one relation's match into per-value evidence.
type Explanation = core.Explanation

// Explain reports why a relation matches a query: the top-n attribute
// values by contribution to the relation's score. This decomposability is
// a direct benefit of value-level embedding — table-level embeddings
// cannot attribute a match to specific cells.
func (e *Engine) Explain(query, relationID string, topN int) (*Explanation, error) {
	return e.emb.Explain(query, relationID, topN)
}

// SearchWithFeedback runs pseudo-relevance feedback (Rocchio): an initial
// search retrieves a few top relations, their embedding centroids expand
// the query, and the expanded query is searched. Useful for very short
// queries that lack context on their own.
func (e *Engine) SearchWithFeedback(query string, k int) ([]Match, error) {
	return core.SearchPRF(e.searcher, e.emb, query, k, core.PRFOptions{})
}

// SearchSources restricts a search to relations belonging to any of the
// named federation members — "find COVID tables, but only from WHO or
// ECDC". An empty source list returns no matches.
func (e *Engine) SearchSources(query string, k int, sources ...string) ([]Match, error) {
	fs, ok := e.searcher.(core.FilteredSearcher)
	if !ok {
		return nil, fmt.Errorf("semdisco: %v does not support filtered search", e.Method())
	}
	allowed := make(map[string]struct{}, len(sources))
	for _, s := range sources {
		allowed[s] = struct{}{}
	}
	return fs.SearchFiltered(query, k, func(relID string) bool {
		_, ok := allowed[e.relSource[relID]]
		return ok
	})
}

// DatasetMatch is one dataset-level discovery result: the paper's §3
// generalization from single-relation datasets to multi-relation ones. A
// dataset is identified by its relations' Source; its score is the best
// member relation's score, and Relations lists the members that matched.
type DatasetMatch struct {
	Source    string
	Score     float32
	Relations []Match
}

// SearchDatasets ranks datasets (groups of relations sharing a Source) for
// the query and returns at most k of them, best first. Internally it
// over-fetches relations (4k, bounded by the corpus) and groups them.
func (e *Engine) SearchDatasets(query string, k int) ([]DatasetMatch, error) {
	if k <= 0 {
		return nil, nil
	}
	fetch := 4 * k
	if n := len(e.emb.RelIDs); fetch > n {
		fetch = n
	}
	matches, err := e.Search(query, fetch)
	if err != nil {
		return nil, err
	}
	grouped := make(map[string]*DatasetMatch)
	var order []string
	for _, m := range matches {
		src := e.relSource[m.RelationID]
		g, ok := grouped[src]
		if !ok {
			g = &DatasetMatch{Source: src, Score: m.Score}
			grouped[src] = g
			order = append(order, src)
		}
		if m.Score > g.Score {
			g.Score = m.Score
		}
		g.Relations = append(g.Relations, m)
	}
	out := make([]DatasetMatch, 0, len(order))
	for _, src := range order {
		out = append(out, *grouped[src])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// enginePersist is the gob envelope of a saved engine. Custom IDF
// functions cannot be serialized; engines built with Config.IDF refuse to
// Save.
type enginePersist struct {
	Version   int
	Method    Method
	Dim       int
	Seed      int64
	Threshold float32
	ExS       ExSOptions
	ANNS      ANNSOptions
	CTS       CTSOptions
	Lexicon   *Lexicon
	Stats     *text.CorpusStats
	RelSource map[string]string
	// EmbBlob carries the embedded federation (core.Embedded.Persist).
	EmbBlob []byte
}

// Save writes the engine so LoadEngine can restore it without re-encoding
// any value. The search index itself (HNSW graphs, clusters) is rebuilt
// deterministically on load from the stored vectors and the original seed.
// Engines configured with a custom IDF function cannot be saved.
func (e *Engine) Save(w io.Writer) error {
	if e.cfg.IDF != nil {
		return fmt.Errorf("semdisco: engines with a custom IDF function cannot be saved")
	}
	var embBlob bytes.Buffer
	if err := e.emb.Persist(&embBlob); err != nil {
		return fmt.Errorf("semdisco: save: %w", err)
	}
	return gob.NewEncoder(w).Encode(enginePersist{
		Version:   1,
		Method:    e.cfg.Method,
		Dim:       e.cfg.Dim,
		Seed:      e.cfg.Seed,
		Threshold: e.cfg.Threshold,
		ExS:       e.cfg.ExS,
		ANNS:      e.cfg.ANNS,
		CTS:       e.cfg.CTS,
		Lexicon:   e.cfg.Lexicon,
		Stats:     e.stats,
		RelSource: e.relSource,
		EmbBlob:   embBlob.Bytes(),
	})
}

// LoadEngine restores an engine written by Save. Value embeddings are read
// back verbatim; the method's index structures are rebuilt.
func LoadEngine(r io.Reader) (*Engine, error) {
	var p enginePersist
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("semdisco: load: %w", err)
	}
	if p.Version != 1 {
		return nil, fmt.Errorf("semdisco: unsupported engine version %d", p.Version)
	}
	cfg := Config{
		Method:    p.Method,
		Dim:       p.Dim,
		Seed:      p.Seed,
		Threshold: p.Threshold,
		ExS:       p.ExS,
		ANNS:      p.ANNS,
		CTS:       p.CTS,
		Lexicon:   p.Lexicon,
	}
	var idf func(string) float64
	if p.Stats != nil {
		idf = statsIDF(p.Stats)
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	reg := obs.NewRegistry()
	reg.SetHelps(core.MetricHelp)
	model.SetObserver(reg)
	emb, err := core.RestoreEmbedded(bytes.NewReader(p.EmbBlob), model)
	if err != nil {
		return nil, err
	}
	emb.Obs = reg
	s, err := buildSearcher(cfg, emb)
	if err != nil {
		return nil, err
	}
	if p.RelSource == nil {
		p.RelSource = make(map[string]string)
	}
	return &Engine{cfg: cfg, model: model, emb: emb, searcher: s, obs: reg,
		diag:   newDiagnostics(DiagnosticsConfig{}, reg),
		traces: newTraceStore(TracingConfig{}),
		stats:  p.Stats, relSource: p.RelSource}, nil
}
