package semdisco

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"semdisco/internal/core"
	"semdisco/internal/embed"
	"semdisco/internal/obs"
	"semdisco/internal/text"
)

// Add indexes one more relation without rebuilding the engine: the
// relation lands in the store's mutable segment (encode and append — no
// index build on the write path) and is served at exhaustive-scan quality
// until background maintenance seals the segment and builds the method's
// index over it. Safe for concurrent use with Search.
func (e *Engine) Add(r *Relation) error {
	if err := e.store.Add(r); err != nil {
		return err
	}
	e.relMu.Lock()
	e.relSource[r.ID] = r.Source
	e.relMu.Unlock()
	return nil
}

// Contribution is one value's share of a match, as reported by Explain.
type Contribution = core.Contribution

// Explanation decomposes one relation's match into per-value evidence.
type Explanation = core.Explanation

// Explain reports why a relation matches a query: the top-n attribute
// values by contribution to the relation's score. This decomposability is
// a direct benefit of value-level embedding — table-level embeddings
// cannot attribute a match to specific cells.
func (e *Engine) Explain(query, relationID string, topN int) (*Explanation, error) {
	return e.store.Explain(query, relationID, topN)
}

// SearchWithFeedback runs pseudo-relevance feedback (Rocchio): an initial
// search retrieves a few top relations, their embedding centroids expand
// the query, and the expanded query is searched. Useful for very short
// queries that lack context on their own.
func (e *Engine) SearchWithFeedback(query string, k int) ([]Match, error) {
	// Feedback centroids come from the base segment's embedding; matches
	// that live in younger segments still rank, they just contribute no
	// centroid until compaction folds them into the base.
	_, baseEmb := e.store.Base()
	return core.SearchPRF(e.store, baseEmb, query, k, core.PRFOptions{})
}

// SearchSources restricts a search to relations belonging to any of the
// named federation members — "find COVID tables, but only from WHO or
// ECDC". An empty source list returns no matches.
func (e *Engine) SearchSources(query string, k int, sources ...string) ([]Match, error) {
	allowed := make(map[string]struct{}, len(sources))
	for _, s := range sources {
		allowed[s] = struct{}{}
	}
	return e.store.SearchFiltered(query, k, func(relID string) bool {
		e.relMu.RLock()
		src := e.relSource[relID]
		e.relMu.RUnlock()
		_, ok := allowed[src]
		return ok
	})
}

// DatasetMatch is one dataset-level discovery result: the paper's §3
// generalization from single-relation datasets to multi-relation ones. A
// dataset is identified by its relations' Source; its score is the best
// member relation's score, and Relations lists the members that matched.
type DatasetMatch struct {
	Source    string
	Score     float32
	Relations []Match
}

// SearchDatasets ranks datasets (groups of relations sharing a Source) for
// the query and returns at most k of them, best first. Internally it
// over-fetches relations (4k, bounded by the corpus) and groups them.
func (e *Engine) SearchDatasets(query string, k int) ([]DatasetMatch, error) {
	if k <= 0 {
		return nil, nil
	}
	fetch := 4 * k
	if n := e.store.NumLiveRelations(); fetch > n {
		fetch = n
	}
	matches, err := e.Search(query, fetch)
	if err != nil {
		return nil, err
	}
	grouped := make(map[string]*DatasetMatch)
	var order []string
	e.relMu.RLock()
	defer e.relMu.RUnlock()
	for _, m := range matches {
		src := e.relSource[m.RelationID]
		g, ok := grouped[src]
		if !ok {
			g = &DatasetMatch{Source: src, Score: m.Score}
			grouped[src] = g
			order = append(order, src)
		}
		if m.Score > g.Score {
			g.Score = m.Score
		}
		g.Relations = append(g.Relations, m)
	}
	out := make([]DatasetMatch, 0, len(order))
	for _, src := range order {
		out = append(out, *grouped[src])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// enginePersist is the gob envelope of a saved engine. Custom IDF
// functions cannot be serialized; engines built with Config.IDF refuse to
// Save.
type enginePersist struct {
	Version   int
	Method    Method
	Dim       int
	Seed      int64
	Threshold float32
	ExS       ExSOptions
	ANNS      ANNSOptions
	CTS       CTSOptions
	Lexicon   *Lexicon
	Stats     *text.CorpusStats
	RelSource map[string]string
	// EmbBlob carries the embedded federation (core.Embedded.Persist);
	// version 1 images only.
	EmbBlob []byte
	// StoreBlob carries the whole segment store (core.SegmentStore.Persist):
	// every segment's vectors, insertion orders and tombstones. Version 2.
	StoreBlob []byte
	// Segments preserves the store policy across the roundtrip.
	Segments SegmentsConfig
}

// Save writes the engine so LoadEngine can restore it without re-encoding
// any value. The search index itself (HNSW graphs, clusters) is rebuilt
// deterministically on load from the stored vectors and the original seed.
// Engines configured with a custom IDF function cannot be saved.
func (e *Engine) Save(w io.Writer) error {
	if e.cfg.IDF != nil {
		return fmt.Errorf("semdisco: engines with a custom IDF function cannot be saved")
	}
	var storeBlob bytes.Buffer
	if err := e.store.Persist(&storeBlob); err != nil {
		return fmt.Errorf("semdisco: save: %w", err)
	}
	e.relMu.RLock()
	relSource := make(map[string]string, len(e.relSource))
	for k, v := range e.relSource {
		relSource[k] = v
	}
	e.relMu.RUnlock()
	return gob.NewEncoder(w).Encode(enginePersist{
		Version:   2,
		Method:    e.cfg.Method,
		Dim:       e.cfg.Dim,
		Seed:      e.cfg.Seed,
		Threshold: e.cfg.Threshold,
		ExS:       e.cfg.ExS,
		ANNS:      e.cfg.ANNS,
		CTS:       e.cfg.CTS,
		Lexicon:   e.cfg.Lexicon,
		Stats:     e.stats,
		RelSource: relSource,
		StoreBlob: storeBlob.Bytes(),
		Segments:  e.cfg.Segments,
	})
}

// LoadEngine restores an engine written by Save. Value embeddings are read
// back verbatim; the method's index structures are rebuilt.
func LoadEngine(r io.Reader) (*Engine, error) {
	var p enginePersist
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("semdisco: load: %w", err)
	}
	if p.Version != 1 && p.Version != 2 {
		return nil, fmt.Errorf("semdisco: unsupported engine version %d", p.Version)
	}
	cfg := Config{
		Method:    p.Method,
		Dim:       p.Dim,
		Seed:      p.Seed,
		Threshold: p.Threshold,
		ExS:       p.ExS,
		ANNS:      p.ANNS,
		CTS:       p.CTS,
		Lexicon:   p.Lexicon,
		Segments:  p.Segments,
	}
	var idf func(string) float64
	if p.Stats != nil {
		idf = statsIDF(p.Stats)
	}
	model := embed.New(embed.Config{
		Dim:     cfg.Dim,
		Seed:    cfg.Seed,
		Lexicon: cfg.Lexicon,
		IDF:     idf,
	})
	reg := obs.NewRegistry()
	reg.SetHelps(core.MetricHelp)
	model.SetObserver(reg)
	var store *core.SegmentStore
	if p.Version == 1 {
		// v1 images carry a single monolithic embedding; wrap it as the
		// store's base segment, exactly as Open does for a fresh build.
		emb, err := core.RestoreEmbedded(bytes.NewReader(p.EmbBlob), model)
		if err != nil {
			return nil, err
		}
		emb.Obs = reg
		s, err := buildSearcher(cfg, emb)
		if err != nil {
			return nil, err
		}
		store = core.NewSegmentStore(emb, s, segmentStoreOptions(cfg))
	} else {
		var err error
		store, err = core.RestoreSegmentStore(bytes.NewReader(p.StoreBlob), model, reg, segmentStoreOptions(cfg))
		if err != nil {
			return nil, err
		}
	}
	if p.RelSource == nil {
		p.RelSource = make(map[string]string)
	}
	return &Engine{cfg: cfg, model: model, store: store, obs: reg,
		diag:   newDiagnostics(DiagnosticsConfig{}, reg),
		traces: newTraceStore(TracingConfig{}),
		stats:  p.Stats, relSource: p.RelSource}, nil
}
