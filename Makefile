GO ?= go
CORPUS ?= wikitables

.PHONY: build vet lint test race race-cluster check bench-smoke bench-json bench-kernels trace-smoke segment-churn-smoke netcluster-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet: staticcheck when it is on PATH (CI installs
# it), vet alone otherwise — the build must not fetch tools implicitly.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; go vet only"; \
	fi

test:
	$(GO) test ./...

# The observability layer is all lock-free atomics and RWMutex-guarded
# caches; race keeps it honest.
race:
	$(GO) test -race ./...

# Focused race pass over the scatter-gather layer: the cluster router's
# concurrent fan-out, hedging and cache invalidation, plus the LRU it
# shares. Fast enough to run on every change to either package.
race-cluster:
	$(GO) test -race ./internal/cluster/... ./internal/cache/...

check: lint race

# One-iteration pass over every microbenchmark (HNSW build, k-means, vector
# kernels, ...): catches benchmarks that no longer compile or crash, without
# the cost of real measurement.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./internal/...
	$(GO) run ./cmd/semdisco-bench -corpus $(CORPUS) -scale 0.05 -dim 96 -train=false -shards 2 -batch -churn -json /dev/null

# Kernel micro-benchmarks: the batched DotBatch/L2SqBatch kernels against
# repeated single-query Dot calls, plus the bounded top-k selection. The
# transcript lands in benchrun_kernels.txt so kernel regressions show up in
# review diffs.
bench-kernels:
	$(GO) test -run=^$$ -bench 'Dot|L2Sq|TopK|FullSort' -benchtime=2s ./internal/vec/ | tee benchrun_kernels.txt

# Segment-store churn smoke: race-checked delete/update/add churn against
# the engine and segment store, pinning that a churned, compacted index
# ranks bit-identically to one built fresh from the surviving corpus and
# that searches never block or degrade while a compaction swaps segments.
segment-churn-smoke:
	$(GO) test -race -run 'TestEngineChurnEquivalence|TestEngineSearchNonBlockingDuringCompaction|TestClusterDeleteUpdate' .
	$(GO) test -race -run 'TestSegmentStoreChurnEquivalence|TestSegmentStoreSearchDuringCompaction|TestSegmentStoreConcurrentChurn' ./internal/core/

# Networked-cluster smoke: replica sets of shard servers on loopback HTTP
# behind a replicated coordinator, race-checked end to end. Pins the wire
# protocol and replica failover (hung replica, whole set down, malformed
# responses), the bit-identical-to-single-engine merge over the wire, a
# replica killed mid-run leaving every query answered, and the coordinator
# mode of the HTTP API.
netcluster-smoke:
	$(GO) test -race ./internal/netcluster/
	$(GO) test -race -run 'TestNetShard|TestNetCluster' .
	$(GO) test -race -run 'TestCoordinatorServer' ./internal/httpapi/

# End-to-end tracing smoke: serve a freshly generated corpus as a 4-shard
# hedged cluster with every trace retained, run one search, and assert the
# span tree comes back from /v1/debug/traces/{id} and its exemplar shows
# up on the OpenMetrics scrape. Needs curl and jq.
trace-smoke:
	sh ./scripts/trace-smoke.sh

# Machine-readable benchmark report (build time, latency quantiles,
# MAP/NDCG, per-method cost-model numbers) for the selected corpus profile,
# written to BENCH_$(CORPUS).json at the repo root and echoed to stdout.
# Scaled down and untrained to keep the run short; raise -scale for
# paper-grade numbers.
bench-json:
	$(GO) run ./cmd/semdisco-bench -corpus $(CORPUS) -scale 0.15 -dim 192 -train=false -cost -batch -churn -json BENCH_$(CORPUS).json
