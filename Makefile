GO ?= go

.PHONY: build vet test race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer is all lock-free atomics and RWMutex-guarded
# caches; race keeps it honest.
race:
	$(GO) test -race ./...

check: vet race
