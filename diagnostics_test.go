package semdisco

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func diagEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Dim == 0 {
		cfg.Dim = 96
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	eng, err := Open(vaccineFederation(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSlowQueriesAfterBurst(t *testing.T) {
	eng := diagEngine(t, Config{Method: ExS})
	queries := []string{"COVID", "vaccines in Europe", "mineral hardness", "COVID", "quartz"}
	for _, q := range queries {
		if _, err := eng.Search(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	slow := eng.SlowQueries(3)
	if len(slow) != 3 {
		t.Fatalf("got %d slow queries, want 3", len(slow))
	}
	for i, sq := range slow {
		if sq.Method != "ExS" || sq.Query == "" || sq.K != 5 {
			t.Fatalf("record %d = %+v", i, sq)
		}
		if len(sq.Stages) == 0 {
			t.Fatalf("record %d has no stage trace: %+v", i, sq)
		}
		if i > 0 && sq.DurationMS > slow[i-1].DurationMS {
			t.Fatalf("not sorted slowest-first: %v after %v", sq.DurationMS, slow[i-1].DurationMS)
		}
	}
	st := eng.SlowLogStats()
	if st.Recorded != int64(len(queries)) || st.Retained != len(queries) {
		t.Fatalf("stats=%+v", st)
	}
}

func TestSlowQueryThresholdAndCounter(t *testing.T) {
	eng := diagEngine(t, Config{
		Diagnostics: DiagnosticsConfig{SlowLogThreshold: time.Hour},
	})
	if _, err := eng.Search("COVID", 3); err != nil {
		t.Fatal(err)
	}
	if got := eng.SlowQueries(0); len(got) != 0 {
		t.Fatalf("sub-threshold query retained: %+v", got)
	}
	st := eng.SlowLogStats()
	if st.Recorded != 0 || st.Retained != 0 || st.ThresholdMS != time.Hour.Seconds()*1000 {
		t.Fatalf("stats=%+v", st)
	}
	// No query crossed the threshold, so the slow counter must not move.
	for name := range eng.MetricsRegistry().Snapshot().Counters {
		if strings.HasPrefix(name, "semdisco_slow_queries_total") {
			t.Fatalf("slow counter incremented: %s", name)
		}
	}
}

func TestTraceSamplingJournal(t *testing.T) {
	eng := diagEngine(t, Config{
		Method:      ExS,
		Diagnostics: DiagnosticsConfig{TraceSampleEvery: 2},
	})
	for i := 0; i < 6; i++ {
		if _, err := eng.Search("COVID vaccines", 3); err != nil {
			t.Fatal(err)
		}
	}
	j := eng.Journal()
	if j == nil {
		t.Fatal("journal nil with diagnostics enabled")
	}
	events := j.Events(0)
	if len(events) != 3 { // 1-in-2 of 6 queries
		t.Fatalf("got %d journal events, want 3", len(events))
	}
	for _, ev := range events {
		if ev.Kind != "sampled" || len(ev.Stages) == 0 {
			t.Fatalf("event=%+v", ev)
		}
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines=%d", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("bad jsonl line %q: %v", lines[0], err)
	}
}

func TestDiagnosticsDisabled(t *testing.T) {
	eng := diagEngine(t, Config{Diagnostics: DiagnosticsConfig{Disable: true}})
	if _, err := eng.Search("COVID", 3); err != nil {
		t.Fatal(err)
	}
	if eng.SlowQueries(0) != nil || eng.Journal() != nil {
		t.Fatal("diagnostics surfaces should be nil when disabled")
	}
	// Re-enabling via ConfigureDiagnostics brings them back.
	eng.ConfigureDiagnostics(DiagnosticsConfig{})
	if _, err := eng.Search("COVID", 3); err != nil {
		t.Fatal(err)
	}
	if got := eng.SlowQueries(0); len(got) != 1 {
		t.Fatalf("after re-enable: %+v", got)
	}
}

// Satellite (c): traced search must return the full stage breakdown even
// with the metrics registry disabled.
func TestSearchTracedWithoutRegistry(t *testing.T) {
	eng := diagEngine(t, Config{Method: ExS, DisableMetrics: true})
	if eng.MetricsRegistry() != nil {
		t.Fatal("registry should be nil under DisableMetrics")
	}
	matches, stages, err := eng.SearchTraced("COVID", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if len(stages) == 0 {
		t.Fatal("no stage timings under DisableMetrics")
	}
	names := make(map[string]bool)
	for _, s := range stages {
		names[s.Name] = true
	}
	if !names["encode"] {
		t.Fatalf("missing encode stage: %+v", stages)
	}
	// Stats must degrade gracefully, not panic, without a registry.
	st := eng.Stats()
	if st.NumValues == 0 || st.Searches != nil {
		t.Fatalf("stats=%+v", st)
	}
	// Diagnostics still work without a registry.
	if got := eng.SlowQueries(0); len(got) != 1 {
		t.Fatalf("slow log without registry: %+v", got)
	}
}

func TestEngineIndexHealth(t *testing.T) {
	for _, m := range []Method{ExS, ANNS, CTS} {
		eng := diagEngine(t, Config{
			Method: m,
			CTS:    CTSOptions{MinClusterSize: 4, UMAPEpochs: 60},
		})
		h := eng.IndexHealth()
		if h.Method != m.String() || h.Values != eng.NumValues() {
			t.Fatalf("%v: health=%+v", m, h)
		}
		snap := eng.MetricsRegistry().Snapshot()
		switch m {
		case ANNS:
			if h.Graph == nil || h.Graph.ReachableFraction != 1 {
				t.Fatalf("ANNS graph=%+v", h.Graph)
			}
			if _, ok := snap.Gauges["semdisco_index_reachable_fraction"]; !ok {
				t.Fatal("reachable gauge not exported")
			}
		case CTS:
			if h.Graphs == nil || h.Clusters == nil {
				t.Fatalf("CTS health=%+v", h)
			}
			if _, ok := snap.Gauges["semdisco_index_cluster_size_cv"]; !ok {
				t.Fatal("cluster CV gauge not exported")
			}
			if _, ok := snap.Gauges["semdisco_index_medoid_drift_mean"]; !ok {
				t.Fatal("medoid drift gauge not exported")
			}
		}
	}
}

func TestEngineRecallProbe(t *testing.T) {
	eng := diagEngine(t, Config{Method: ANNS, Lexicon: vaccineLexicon()})

	// Fresh engine: no served queries, probe falls back to value texts.
	res, err := eng.RecallProbe(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "value_sample" || res.Probed == 0 {
		t.Fatalf("fresh probe=%+v", res)
	}
	if res.Recall < 0 || res.Recall > 1 {
		t.Fatalf("recall=%v out of [0,1]", res.Recall)
	}

	// After real traffic the probe replays the recent-query ring.
	for _, q := range []string{"COVID", "mineral hardness"} {
		if _, err := eng.Search(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	res, err = eng.RecallProbe(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "recent_queries" {
		t.Fatalf("warm probe=%+v", res)
	}
	if res.Method != "ANNS" || res.K != 5 {
		t.Fatalf("probe=%+v", res)
	}
	found := false
	for name := range eng.MetricsRegistry().Snapshot().Gauges {
		if strings.HasPrefix(name, "semdisco_recall_at_k") {
			found = true
		}
	}
	if !found {
		t.Fatal("recall gauge not exported")
	}
	// Probes must not pollute the slow log they sample from.
	if got := eng.SlowLogStats().Recorded; got != 2 {
		t.Fatalf("probe polluted slow log: recorded=%d", got)
	}
}

func TestLoadedEngineHasDiagnostics(t *testing.T) {
	eng := diagEngine(t, Config{Method: ExS})
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.ConfigureDiagnostics(DiagnosticsConfig{TraceSampleEvery: 1})
	if _, err := loaded.Search("COVID", 3); err != nil {
		t.Fatal(err)
	}
	if len(loaded.SlowQueries(0)) != 1 || loaded.Journal().Len() != 1 {
		t.Fatal("diagnostics not active on loaded engine")
	}
}
